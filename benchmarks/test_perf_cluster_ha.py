"""Performance/availability benchmark: the HA serving cluster.

Spins up a real 3-replica cluster (each replica a subprocess engine)
and drives the :mod:`repro.evaluation.loadtest` harness through the
coordinator three times:

1. **Steady state** — the latency distribution (p50/p95/p99) and
   throughput of hash-routed serving with every replica healthy.
2. **Replica kill** — one replica is SIGKILLed while load is running;
   the availability contract is *zero failed requests* (clients do not
   retry — surviving the crash is the coordinator's job) and
   byte-identical reports throughout.
3. **Rolling rollout** — a new artifact ships replica-by-replica under
   the same load; again zero failures and byte-identical responses.

Results land in the ``"cluster"`` record of ``BENCH_serving.json``,
next to (not instead of) the serial/parallel detection record.  The
zero-loss and byte-identity assertions are hard invariants — never
advisory; latency numbers are measurements, not floors, so a slow
shared runner can't flake this benchmark.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import time

import pytest

from conftest import bench_machine, print_table

from repro.core.namer import Namer, NamerConfig
from repro.core.persistence import save_namer
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.evaluation.loadtest import reference_digests, run_load
from repro.mining.miner import MiningConfig
from repro.service.client import HttpClient
from repro.service.cluster_http import serve_cluster
from repro.service.engine import AnalysisEngine

BENCH_OUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_serving.json"
MINING = MiningConfig(min_pattern_support=15, min_path_frequency=6)
REPLICAS = 3
CLIENTS = 8
STEADY_REQUESTS = 150
CHAOS_REQUESTS = 120


@pytest.fixture(scope="module")
def artifact_and_payloads(tmp_path_factory):
    corpus = generate_python_corpus(
        GeneratorConfig(num_repos=30, issue_rate=0.12, seed=7)
    )
    namer = Namer(NamerConfig(mining=MINING))
    namer.mine(corpus)
    violations = namer.all_violations()[:80]
    namer.train(violations, [i % 2 for i in range(len(violations))])
    artifact = tmp_path_factory.mktemp("cluster-bench") / "namer.json"
    save_namer(namer, artifact)
    payloads = []
    for repo, source in corpus.files():
        payloads.append({"source": source.source, "path": source.path})
        if len(payloads) == 6:
            break
    return artifact, payloads


@pytest.fixture(scope="module")
def cluster(artifact_and_payloads):
    artifact, _ = artifact_and_payloads
    server = serve_cluster(
        str(artifact), port=0, replicas=REPLICAS, replica_workers=2
    )
    yield server
    server.stop()


@pytest.fixture(scope="module")
def reference(artifact_and_payloads):
    artifact, payloads = artifact_and_payloads
    engine = AnalysisEngine(
        artifact_path=str(artifact), workers=1, cache_entries=8
    )
    try:
        return reference_digests(engine, payloads)
    finally:
        engine.shutdown(drain=False)


def _assert_lossless_and_identical(result, reference, label: str) -> None:
    assert result.failures == [], (
        f"{label}: {len(result.failures)} failed request(s): "
        f"{[s.error for s in result.failures][:5]}"
    )
    for index, digests in result.digests_by_payload().items():
        assert digests == {reference[index]}, (
            f"{label}: payload {index} served "
            f"{len(digests)} distinct response(s)"
        )


def test_cluster_ha_latency_and_availability(
    cluster, artifact_and_payloads, reference, tmp_path_factory
):
    artifact, payloads = artifact_and_payloads
    coordinator = cluster.coordinator

    # 1. steady state: the headline latency distribution
    steady = run_load(
        cluster.url, payloads, clients=CLIENTS, total_requests=STEADY_REQUESTS
    )
    _assert_lossless_and_identical(steady, reference, "steady state")
    assert len(steady.replicas_hit()) >= 2, "routing never spread the load"

    # 2. kill one replica mid-load: zero loss, identical bytes
    victim = coordinator.handles[0]
    killed = run_load(
        cluster.url,
        payloads,
        clients=CLIENTS,
        total_requests=CHAOS_REQUESTS,
        mid_run=(0.3, victim.kill),
    )
    _assert_lossless_and_identical(killed, reference, "replica kill")
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline and not victim.routable:
        time.sleep(0.2)
    assert victim.routable, "killed replica was never restarted"
    assert victim.restarts >= 1

    # 3. rolling rollout under load: zero loss, identical bytes
    new_artifact = tmp_path_factory.mktemp("cluster-bench-v2") / "namer-v2.json"
    shutil.copyfile(artifact, new_artifact)
    rollout_outcome: dict = {}

    def start_rollout():
        rollout_outcome.update(
            HttpClient(cluster.url, timeout=600.0).request(
                "POST", "/reload", {"artifacts": str(new_artifact)}
            )
        )

    rolled = run_load(
        cluster.url,
        payloads,
        clients=CLIENTS,
        total_requests=CHAOS_REQUESTS,
        mid_run=(0.2, start_rollout),
    )
    _assert_lossless_and_identical(rolled, reference, "rolling rollout")
    assert rollout_outcome.get("status") == "complete", rollout_outcome

    status = HttpClient(cluster.url).request("GET", "/cluster/status")
    record = {
        "replicas": REPLICAS,
        **bench_machine(),
        "steady": steady.to_json(),
        "replica_kill": {
            **killed.to_json(),
            "restarts": status["restarts"],
        },
        "rolling_rollout": {
            **rolled.to_json(),
            "rollouts_completed": status["counters"]["rollouts_completed"],
        },
        "failovers": status["counters"]["failovers"],
        "ejections": status["ejections"],
    }

    # Merge into BENCH_serving.json without clobbering the detection
    # record (and vice versa — see test_perf_detect_parallel.py).
    existing: dict = {}
    if BENCH_OUT.exists():
        try:
            existing = json.loads(BENCH_OUT.read_text())
        except ValueError:
            existing = {}
    existing["cluster"] = record
    BENCH_OUT.write_text(json.dumps(existing, indent=2) + "\n")

    lat = steady.to_json()["latency_ms"]
    print_table(
        f"Performance — HA cluster ({REPLICAS} replicas, {CLIENTS} clients)",
        f"steady:  {steady}\n"
        f"  p50 {lat['p50']:.1f} ms / p95 {lat['p95']:.1f} ms / "
        f"p99 {lat['p99']:.1f} ms at {steady.throughput_rps:.0f} req/s\n"
        f"kill:    {killed} (restarts: {status['restarts']})\n"
        f"rollout: {rolled} "
        f"(completed: {status['counters']['rollouts_completed']})",
    )
