"""Performance benchmark: the anchor-indexed pattern matcher.

Matching tens of thousands of mined patterns against every statement is
the inner loop of both pruneUncommon and inference; the anchor index
(patterns keyed by a deduction prefix) turns it from O(P) per statement
into a hash lookup.  This benchmark measures the speedup against the
brute-force scan and asserts the index returns exactly the same
violations.
"""

import time

from conftest import print_table

from repro.core.patterns import find_violation
from repro.mining.matcher import PatternMatcher


def test_matcher_index_speedup(python_ablation, benchmark):
    namer = python_ablation.namer
    matcher = namer.matcher
    statements = [
        ps for pf in namer.prepared for ps in pf.statements
    ][:400]

    def indexed():
        found = 0
        for ps in statements:
            found += len(matcher.violations(ps.stmt, ps.paths))
        return found

    def brute_force():
        found = 0
        for ps in statements:
            for pattern in matcher.patterns:
                if find_violation(pattern, ps.stmt, ps.paths) is not None:
                    found += 1
        return found

    indexed_count = benchmark.pedantic(indexed, rounds=3, iterations=1)

    start = time.perf_counter()
    brute_count = brute_force()
    brute_seconds = time.perf_counter() - start
    start = time.perf_counter()
    indexed()
    indexed_seconds = time.perf_counter() - start
    speedup = brute_seconds / max(indexed_seconds, 1e-9)

    print_table(
        "Performance — anchor index vs brute-force matching",
        f"patterns: {len(matcher.patterns)}, statements: {len(statements)}\n"
        f"brute force: {brute_seconds * 1000:.0f} ms\n"
        f"anchor index: {indexed_seconds * 1000:.0f} ms\n"
        f"speedup: {speedup:.1f}x",
    )

    assert indexed_count == brute_count, "index must not change results"
    assert speedup > 2.0, "the index should be substantially faster"
