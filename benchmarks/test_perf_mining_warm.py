"""Performance benchmark: incremental re-mining from the warm cache.

Mines a corpus cold with ``NamerConfig.cache_dir`` set, re-mines it
warm (nothing changed), then re-mines after a one-file cosmetic edit,
and writes the measurements to ``BENCH_mining_warm.json`` at the repo
root.  Two hard assertions are never relaxed:

* the warm and edited runs produce byte-identical artifacts, and
* the one-file edit re-prepares exactly one file and re-counts exactly
  one statement shard (the incrementality contract).

The >= 5x warm-over-cold floor follows the same enforcement protocol
as ``test_perf_parallel_mining``: ``REPRO_BENCH_MIN_WARM_SPEEDUP``
overrides it, ``REPRO_BENCH_ENFORCE_SPEEDUP=0`` demotes a miss to an
advisory (shared CI runners), and it is enforced everywhere else —
warm speedup comes from skipped work, not extra cores, so there is no
core-count gate.
"""

from __future__ import annotations

import copy
import json
import os
import pathlib
import time

import pytest

from conftest import BENCH_MINING, bench_machine, print_table

from repro.core.namer import Namer, NamerConfig
from repro.core.persistence import namer_to_document

BENCH_OUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_mining_warm.json"


@pytest.fixture(scope="module")
def warm_corpus():
    from repro.corpus.generator import GeneratorConfig, generate_python_corpus

    return generate_python_corpus(
        GeneratorConfig(num_repos=60, issue_rate=0.12, seed=7)
    )


def _mine(corpus, cache_dir) -> tuple[Namer, float]:
    namer = Namer(NamerConfig(mining=BENCH_MINING, cache_dir=str(cache_dir)))
    start = time.perf_counter()
    namer.mine(corpus)
    return namer, time.perf_counter() - start


def _doc_bytes(namer) -> bytes:
    return json.dumps(namer_to_document(namer), sort_keys=True).encode()


ROUNDS = 3  # best-of: shared 1-core runners are noisy, warm runs are cheap


def test_warm_cache_incremental_mining(warm_corpus, tmp_path):
    cache_dir = tmp_path / "warm-cache"

    cold_namer, cold_seconds = _mine(warm_corpus, cache_dir)

    warm_seconds = float("inf")
    for _ in range(ROUNDS):
        warm_namer, seconds = _mine(warm_corpus, cache_dir)
        warm_seconds = min(warm_seconds, seconds)

    assert _doc_bytes(warm_namer) == _doc_bytes(cold_namer), (
        "a warm re-mine must produce byte-identical artifacts"
    )
    warm_stats = warm_namer.summary.cache_stats
    assert all(s["misses"] == 0 for s in warm_stats.values()), (
        "a zero-change warm run must recompute nothing"
    )

    # One cosmetic edit per round (each with fresh bytes, so every
    # round re-prepares exactly one file): the file re-prepares and its
    # statement shard re-counts, but the AST — and therefore the
    # artifact — is unchanged.
    edit_seconds = float("inf")
    for round_index in range(ROUNDS):
        edited = copy.deepcopy(warm_corpus)
        edited.repositories[0].files[0].source += (
            f"\n# perf probe {round_index}\n"
        )
        edit_namer, seconds = _mine(edited, cache_dir)
        edit_seconds = min(edit_seconds, seconds)
    edit_stats = edit_namer.summary.cache_stats
    assert edit_stats["prepare"]["misses"] == 1, (
        "a one-file edit must re-prepare exactly that file"
    )
    assert edit_stats["frequency"]["misses"] == 1, (
        "a one-file edit must re-count exactly that file's shard"
    )
    assert _doc_bytes(edit_namer) == _doc_bytes(cold_namer), (
        "a comment-only edit must not change the mined artifact"
    )

    warm_speedup = cold_seconds / max(warm_seconds, 1e-9)
    edit_speedup = cold_seconds / max(edit_seconds, 1e-9)
    total_shards = cold_namer.summary.cache_stats["frequency"]["stores"]
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_WARM_SPEEDUP", "5"))
    enforce = os.environ.get("REPRO_BENCH_ENFORCE_SPEEDUP", "1") != "0"
    record = {
        **bench_machine(),
        "repos": len(warm_corpus.repositories),
        "statements": cold_namer.summary.total_statements,
        "shards": total_shards,
        "patterns": cold_namer.summary.num_patterns,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "one_edit_seconds": round(edit_seconds, 3),
        "warm_speedup": round(warm_speedup, 2),
        "one_edit_speedup": round(edit_speedup, 2),
        "warm_cache_stats": warm_stats,
        "one_edit_cache_stats": edit_stats,
    }
    # Warm speedup comes from skipped work, not extra cores: no
    # core-count gate, so the only advisory cause is a missed floor
    # with enforcement off.
    if warm_speedup < min_speedup and not enforce:
        record["advisory"] = True
        record["advisory_reason"] = (
            f"missed floor: {warm_speedup:.2f}x < {min_speedup}x "
            f"(enforcement disabled)"
        )
    BENCH_OUT.write_text(json.dumps(record, indent=2) + "\n")

    print_table(
        "Performance — warm-cache incremental mining",
        f"statements: {cold_namer.summary.total_statements}, "
        f"shards: {total_shards}\n"
        f"cold:          {cold_seconds:.2f} s\n"
        f"warm (0 edits): {warm_seconds:.2f} s  ({warm_speedup:.1f}x)\n"
        f"warm (1 edit):  {edit_seconds:.2f} s  ({edit_speedup:.1f}x)",
    )

    if warm_speedup < min_speedup:
        message = (
            f"expected a warm re-mine >= {min_speedup}x faster than cold, "
            f"got {warm_speedup:.2f}x"
        )
        if enforce:
            pytest.fail(message)
        print(f"[advisory] {record['advisory_reason']}")
