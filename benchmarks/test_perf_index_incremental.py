"""Performance benchmark: warm repository-index refresh vs cold build.

Writes a corpus-sized project tree to disk, builds its persistent
index cold (walk + hash + analyze every file), then re-refreshes warm
— nothing changed, so every file should ride the mtime/size fast path
— and after a two-file edit, asserting the edit re-analyzes *exactly*
those two files (the incrementality contract).  Measurements land in
``BENCH_index.json`` at the repo root.

The >= 5x warm-over-cold floor follows the usual protocol:
``REPRO_BENCH_MIN_WARM_SPEEDUP`` overrides it and
``REPRO_BENCH_ENFORCE_SPEEDUP=0`` demotes a miss to an advisory.  Warm
speedup comes from skipped work, not extra cores, so there is no
core-count gate; the exactly-two assertion is never relaxed.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from conftest import BENCH_CONFIG, bench_machine, print_table

from repro.core.namer import Namer
from repro.index import RepoIndex, RepoIndexer

BENCH_OUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_index.json"
ROUNDS = 3  # best-of: warm refreshes are cheap, shared runners noisy


@pytest.fixture(scope="module")
def index_setup(tmp_path_factory):
    """A mined namer plus an on-disk project tree to index."""
    from repro.corpus.generator import GeneratorConfig, generate_python_corpus

    corpus = generate_python_corpus(
        GeneratorConfig(num_repos=30, issue_rate=0.12, seed=7)
    )
    namer = Namer(BENCH_CONFIG)
    namer.mine(corpus)
    root = tmp_path_factory.mktemp("index-bench") / "project"
    for repo, source in corpus.files():
        target = root / repo.name / pathlib.Path(source.path).name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source.source)
    return namer, root


def test_index_warm_refresh_speedup(index_setup, tmp_path):
    namer, root = index_setup
    store = RepoIndex(tmp_path / "bench-index.db")
    indexer = RepoIndexer(str(root), namer, store)
    try:
        start = time.perf_counter()
        cold = indexer.refresh()
        cold_seconds = time.perf_counter() - start
        assert cold.added and not cold.changed, "first cycle builds"

        warm_seconds = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            warm = indexer.refresh()
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
            assert warm.analyzed == [], (
                "a zero-change warm refresh must re-analyze nothing"
            )
        assert warm.unchanged == len(cold.added)

        # the incrementality contract: editing exactly two files
        # re-analyzes exactly those two
        edited = sorted(cold.added)[:2]
        for rel in edited:
            path = root / rel
            path.write_text(path.read_text() + "\n# bench probe\n")
        start = time.perf_counter()
        delta = indexer.refresh()
        edit_seconds = time.perf_counter() - start
        assert delta.analyzed == edited, (
            f"a two-file edit must re-analyze exactly {edited}, "
            f"got {delta.analyzed}"
        )
        files = len(store)
    finally:
        store.close()

    warm_speedup = cold_seconds / max(warm_seconds, 1e-9)
    edit_speedup = cold_seconds / max(edit_seconds, 1e-9)
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_WARM_SPEEDUP", "5"))
    enforce = os.environ.get("REPRO_BENCH_ENFORCE_SPEEDUP", "1") != "0"
    record = {
        **bench_machine(),
        "files": files,
        "report_rows": cold.report_rows,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "two_edit_seconds": round(edit_seconds, 3),
        "warm_speedup": round(warm_speedup, 2),
        "two_edit_speedup": round(edit_speedup, 2),
    }
    # Warm speedup comes from skipped work, not extra cores: the only
    # advisory cause is a missed floor with enforcement off.
    if warm_speedup < min_speedup and not enforce:
        record["advisory"] = True
        record["advisory_reason"] = (
            f"missed floor: {warm_speedup:.2f}x < {min_speedup}x "
            f"(enforcement disabled)"
        )
    BENCH_OUT.write_text(json.dumps(record, indent=2) + "\n")

    print_table(
        "Performance — warm repository-index refresh",
        f"files: {files}, report rows: {cold.report_rows}\n"
        f"cold build:     {cold_seconds:.2f} s\n"
        f"warm (0 edits): {warm_seconds:.3f} s  ({warm_speedup:.1f}x)\n"
        f"warm (2 edits): {edit_seconds:.3f} s  ({edit_speedup:.1f}x)",
    )

    if warm_speedup < min_speedup:
        message = (
            f"expected a warm index refresh >= {min_speedup}x faster "
            f"than the cold build, got {warm_speedup:.2f}x"
        )
        if enforce:
            pytest.fail(message)
        print(f"[advisory] {record['advisory_reason']}")
