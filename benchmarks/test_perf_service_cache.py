"""Performance benchmark: the service's content-hash result cache.

A long-running ``python -m repro serve`` daemon re-analyzes mostly
unchanged codebases; the engine answers those from the SHA-256 result
cache instead of re-running parse + points-to + matching + the
classifier.  This benchmark measures the warm/cold ratio on a
generated corpus and asserts the cache pays for itself by at least an
order of magnitude, while returning byte-identical reports.
"""

import time

import pytest
from conftest import print_table

from repro.service.engine import AnalysisEngine, AnalysisRequest

pytestmark = pytest.mark.service


def test_warm_cache_at_least_10x_faster(python_corpus, python_ablation, benchmark):
    engine = AnalysisEngine(
        namer=python_ablation.namer, workers=2, queue_capacity=256, cache_entries=4096
    )
    try:
        requests = [
            AnalysisRequest(source=source.source, path=source.path, repo=repo.name)
            for repo, source in python_corpus.files()
        ][:120]

        start = time.perf_counter()
        cold = engine.analyze_many(requests)
        cold_seconds = time.perf_counter() - start

        def warm_pass():
            return engine.analyze_many(requests)

        warm = benchmark.pedantic(warm_pass, rounds=3, iterations=1)
        start = time.perf_counter()
        warm_pass()
        warm_seconds = time.perf_counter() - start
        speedup = cold_seconds / max(warm_seconds, 1e-9)

        print_table(
            "Performance — warm result cache vs cold analysis",
            f"files: {len(requests)}, "
            f"violations: {sum(len(r.reports) for r in cold)}\n"
            f"cold (full pipeline): {cold_seconds * 1000:.0f} ms\n"
            f"warm (cache hits):    {warm_seconds * 1000:.0f} ms\n"
            f"speedup: {speedup:.1f}x, "
            f"hit rate: {engine.cache.stats.hit_rate:.2f}",
        )

        assert all(not r.cached for r in cold)
        assert all(r.cached for r in warm)
        assert [r.reports for r in warm] == [r.reports for r in cold]
        assert engine.cache.stats.hit_rate > 0.5
        assert speedup >= 10.0, "warm cache must be >= 10x faster than cold"
    finally:
        engine.shutdown(drain=False, timeout=5)
