"""Performance benchmark: frozen matcher artifacts.

Mines the benchmark corpus once, freezes the trained namer into the
mmap blob (``repro.mining.frozen``), and measures the three wins the
frozen tier exists for:

1. **Serial match phase.** ``detect_many`` over the whole prepared
   corpus with the vectorized batch walk (``use_frozen=True``, the
   default) against the scalar single-statement walk
   (``use_frozen=False``).  Report JSON must be byte-identical — that
   assertion is the hard invariant — and the batch walk must beat the
   scalar walk by ``REPRO_BENCH_MIN_FROZEN_SPEEDUP`` (default 2x).
2. **Cold start.** ``load_frozen_namer`` (zero-copy mmap) against the
   JSON ``load_namer`` decode of the same artifact, best-of-N; floor
   ``REPRO_BENCH_MIN_COLDSTART_SPEEDUP`` (default 10x).  The loaded
   namer must re-encode to the exact bytes of the JSON artifact's
   document — damage-is-a-miss only works if the blob is lossless.
3. **N-replica memory.** A real 2-replica cluster serving the frozen
   blob: per-replica ``VmRSS`` from ``/proc`` plus the startup metrics
   the replicas report (``startup_seconds``/``artifact_load_seconds``/
   ``artifact_source``).  Recorded, not enforced — RSS depends on the
   allocator and the runner.

``REPRO_BENCH_ENFORCE_SPEEDUP=0`` demotes a missed floor to an
advisory record, as everywhere else.  Results land under the
``"frozen"`` key of ``BENCH_serving.json``, preserving the file's
other records.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from conftest import bench_machine, print_table

from repro.core.namer import Namer, NamerConfig
from repro.core.persistence import load_namer, namer_to_document, save_namer
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.mining.frozen import freeze_namer, load_frozen_namer
from repro.mining.miner import MiningConfig
from repro.service.cluster_http import serve_cluster

BENCH_OUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_serving.json"
MINING = MiningConfig(min_pattern_support=20, min_path_frequency=8)
ROUNDS = 3  # best-of: the first round pays cache warm-up
REPLICAS = 2


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    corpus = generate_python_corpus(
        GeneratorConfig(num_repos=60, issue_rate=0.12, seed=7)
    )
    namer = Namer(NamerConfig(mining=MINING))
    namer.mine(corpus)
    violations = namer.all_violations()[:80]
    namer.train(violations, [i % 2 for i in range(len(violations))])
    root = tmp_path_factory.mktemp("frozen-bench")
    artifact = root / "namer.json"
    save_namer(namer, artifact)
    frozen_path = artifact.with_name(artifact.name + ".frozen")
    summary = freeze_namer(namer, frozen_path)
    return namer, artifact, frozen_path, summary


def _merge_record(record: dict) -> None:
    """Set the ``"frozen"`` key, keeping the file's other records."""
    prior = {}
    if BENCH_OUT.exists():
        try:
            prior = json.loads(BENCH_OUT.read_text())
        except ValueError:
            prior = {}
    prior["frozen"] = record
    BENCH_OUT.write_text(json.dumps(prior, indent=2) + "\n")


def _detect_arm(namer) -> tuple[str, float]:
    """Report blob plus best-of-ROUNDS serial match seconds."""
    from repro.parallel.profiler import PhaseProfiler

    blob = ""
    best = None
    for _ in range(ROUNDS):
        profiler = PhaseProfiler()
        groups = namer.detect_many(list(namer.prepared), profiler=profiler)
        blob = json.dumps(
            [[r.to_json() for r in g] for g in groups], sort_keys=True
        )
        rows = {r["phase"]: r["seconds"] for r in profiler.to_json()}
        if best is None or rows["match"] < best:
            best = rows["match"]
    return blob, best


def _vm_rss_kb(pid: int) -> int | None:
    try:
        text = pathlib.Path(f"/proc/{pid}/status").read_text()
    except OSError:
        return None
    for line in text.splitlines():
        if line.startswith("VmRSS:"):
            return int(line.split()[1])
    return None


def test_frozen_speedups(trained):
    namer, artifact, frozen_path, summary = trained
    min_match = float(os.environ.get("REPRO_BENCH_MIN_FROZEN_SPEEDUP", "2.0"))
    min_cold = float(
        os.environ.get("REPRO_BENCH_MIN_COLDSTART_SPEEDUP", "10.0")
    )
    enforce = os.environ.get("REPRO_BENCH_ENFORCE_SPEEDUP", "1") != "0"
    record: dict = {
        **bench_machine(),
        "patterns": summary["patterns"],
        "blob_bytes": summary["bytes"],
        "json_bytes": artifact.stat().st_size,
    }
    advisories: list[str] = []

    # 1. serial match phase: batch walk vs scalar walk, identical bytes
    assert namer.matcher.use_frozen
    batch_blob, batch_seconds = _detect_arm(namer)
    namer.matcher.use_frozen = False
    try:
        scalar_blob, scalar_seconds = _detect_arm(namer)
    finally:
        namer.matcher.use_frozen = True
    assert batch_blob == scalar_blob, (
        "batch-walk reports must be byte-identical to the scalar walk"
    )
    match_speedup = scalar_seconds / max(batch_seconds, 1e-9)
    record["match"] = {
        "files": len(namer.prepared),
        "scalar_seconds": round(scalar_seconds, 3),
        "batch_seconds": round(batch_seconds, 3),
        "speedup": round(match_speedup, 2),
    }
    if match_speedup < min_match:
        advisories.append(
            f"match speedup {match_speedup:.2f}x < {min_match}x floor"
        )

    # 2. cold start: mmap load vs JSON decode, lossless re-encode
    json_seconds = min(
        _timed(lambda: load_namer(artifact)) for _ in range(ROUNDS)
    )
    cold_best = None
    for _ in range(ROUNDS):
        seconds, loaded = _timed_value(lambda: load_frozen_namer(frozen_path))
        if cold_best is None or seconds < cold_best:
            cold_best = seconds
    reference = json.dumps(namer_to_document(namer), sort_keys=True)
    assert json.dumps(namer_to_document(loaded), sort_keys=True) == reference, (
        "the frozen load must re-encode to the exact JSON document"
    )
    cold_speedup = json_seconds / max(cold_best, 1e-9)
    record["cold_start"] = {
        "json_seconds": round(json_seconds, 4),
        "frozen_seconds": round(cold_best, 4),
        "speedup": round(cold_speedup, 2),
    }
    if cold_speedup < min_cold:
        advisories.append(
            f"cold-start speedup {cold_speedup:.2f}x < {min_cold}x floor"
        )

    # 3. replica fleet: per-replica RSS + the startup metrics satellite
    server = serve_cluster(
        str(artifact), port=0, replicas=REPLICAS, replica_workers=2
    )
    try:
        replicas = []
        for handle in server.coordinator.handles:
            status = handle.status_json()
            assert status["artifact_source"] == "frozen", status
            assert status["startup_seconds"] is not None
            assert status["artifact_load_seconds"] is not None
            replicas.append(
                {
                    "name": status["name"],
                    "vm_rss_kb": _vm_rss_kb(status["pid"]),
                    "startup_seconds": round(status["startup_seconds"], 3),
                    "artifact_load_seconds": round(
                        status["artifact_load_seconds"], 4
                    ),
                    "artifact_source": status["artifact_source"],
                }
            )
    finally:
        server.stop()
    record["replicas"] = replicas

    if advisories and not enforce:
        record["advisory"] = True
        record["advisory_reason"] = "; ".join(advisories) + (
            " (enforcement disabled)"
        )
    _merge_record(record)

    rss = ", ".join(
        f"{r['name']}: {r['vm_rss_kb'] or '?'} kB" for r in replicas
    )
    print_table(
        "Performance — frozen matcher artifacts",
        f"blob: {summary['bytes'] / 1024:.0f} kB "
        f"({summary['arrays']} arrays, {summary['patterns']} patterns)\n"
        f"match:      {scalar_seconds:.3f} s -> {batch_seconds:.3f} s "
        f"({match_speedup:.2f}x)\n"
        f"cold start: {json_seconds * 1000:.1f} ms -> "
        f"{cold_best * 1000:.1f} ms ({cold_speedup:.2f}x)\n"
        f"replica RSS ({REPLICAS} frozen replicas): {rss}",
    )
    if enforce:
        assert match_speedup >= min_match, (
            f"batch walk speedup {match_speedup:.2f}x below the "
            f"{min_match}x floor"
        )
        assert cold_speedup >= min_cold, (
            f"cold-start speedup {cold_speedup:.2f}x below the "
            f"{min_cold}x floor"
        )


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _timed_value(fn):
    started = time.perf_counter()
    value = fn()
    return time.perf_counter() - started, value
