"""Performance benchmark: sharded parallel mining.

Times the miner's frequency/growth/prune passes serially and over a
4-worker process pool on the same prepared statements, asserts the two
produce identical patterns (the bit-identity contract of
``src/repro/parallel/``), and writes the measurements — including the
per-phase profiler rows — to ``BENCH_mining.json`` at the repo root.

The speedup floor is only enforced when the machine actually has the
benchmark's worker count available; a 1-core box still runs the
equivalence check and emits the JSON.  ``REPRO_BENCH_MIN_SPEEDUP``
overrides the floor, and ``REPRO_BENCH_ENFORCE_SPEEDUP=0`` demotes a
miss to an advisory message — what shared CI runners with noisy
neighbours use, reserving the hard floor for dedicated perf machines.
The equivalence assertion is never relaxed by either variable.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from conftest import bench_machine, print_table

from repro.core.namer import Namer, NamerConfig
from repro.core.patterns import PatternKind
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.mining.miner import MiningConfig, PatternMiner
from repro.parallel.executor import ShardExecutor, default_workers
from repro.parallel.profiler import PhaseProfiler, format_phase_table
from repro.parallel.sharding import pack_spans, spans_by_group

BENCH_WORKERS = 4
BENCH_OUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_mining.json"
MINING = MiningConfig(min_pattern_support=20, min_path_frequency=8)


@pytest.fixture(scope="module")
def mining_input():
    """Prepared statements and paths plus the per-repo shard plan."""
    # Large enough that shard compute dwarfs the fixed pool overhead
    # (fork, task dispatch, merging) on a 4-core runner.
    corpus = generate_python_corpus(
        GeneratorConfig(num_repos=90, issue_rate=0.12, seed=7)
    )
    namer = Namer(NamerConfig(mining=MINING))
    prepared = namer.prepare(corpus)
    statements = [ps.stmt for pf in prepared for ps in pf.statements]
    paths = [ps.paths for pf in prepared for ps in pf.statements]
    spans = spans_by_group((pf.repo, len(pf.statements)) for pf in prepared)
    return statements, paths, spans


def _fingerprint(results):
    return [(p.key(), p.support) for r in results for p in r.patterns]


def _mine_both_kinds(miner, statements, paths, *, executor, spans, profiler):
    return [
        miner.mine(
            statements,
            kind,
            paths=paths,
            spans=spans,
            profiler=profiler,
            executor=executor,
        )
        for kind in (PatternKind.CONSISTENCY, PatternKind.CONFUSING_WORD)
    ]


ROUNDS = 2  # best-of: the first parallel round pays fork/copy-on-write warm-up


def test_parallel_mining_speedup(mining_input):
    statements, paths, repo_spans = mining_input
    # One miner per arm: the frequency memo (kind-independent path
    # counts) is per-instance, so each arm warms only itself and the
    # best-of rounds stay comparable across arms.
    serial_miner = PatternMiner(MINING, confusing_pairs=[("True", "Equal")])
    parallel_miner = PatternMiner(MINING, confusing_pairs=[("True", "Equal")])

    serial_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        with ShardExecutor(1) as executor:
            serial = _mine_both_kinds(
                serial_miner,
                statements,
                paths,
                executor=executor,
                spans=None,
                profiler=PhaseProfiler(),
            )
        serial_seconds = min(serial_seconds, time.perf_counter() - start)

    parallel_seconds = float("inf")
    for _ in range(ROUNDS):
        profiler = PhaseProfiler()
        start = time.perf_counter()
        with ShardExecutor(BENCH_WORKERS) as executor:
            spans = pack_spans(repo_spans, executor.shard_hint(len(statements)))
            parallel = _mine_both_kinds(
                parallel_miner,
                statements,
                paths,
                executor=executor,
                spans=spans,
                profiler=profiler,
            )
        parallel_seconds = min(parallel_seconds, time.perf_counter() - start)

    assert _fingerprint(parallel) == _fingerprint(serial), (
        "sharded mining must be bit-identical to serial mining"
    )

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    phases = profiler.to_json()
    # The intern pass (corpus-wide path -> dense-ID table) is memoized
    # on the miner across best-of rounds, so only the round that built
    # the table carries the "intern" row; the recorded profiler is the
    # last round's and may legitimately lack it.
    assert {row["phase"] for row in phases} - {"intern"} == {
        "frequency",
        "growth",
        "generate",
        "prune",
        "prune_shard",  # worker-side prune seconds + shard task count
    }, "miner must fill the caller's profiler"
    # A 4-worker pool time-slicing fewer than 4 cores measures scheduler
    # contention, not parallel mining: keep the raw numbers (the phase
    # rows are still meaningful) but stamp the record advisory so nobody
    # reads the starved-runner "speedup" as a regression.
    starved = default_workers() < BENCH_WORKERS
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.3"))
    enforce = os.environ.get("REPRO_BENCH_ENFORCE_SPEEDUP", "1") != "0"
    record = {
        "workers": BENCH_WORKERS,
        "cores": default_workers(),
        **bench_machine(),
        "shards": len(spans),
        "statements": len(statements),
        "patterns": len(_fingerprint(serial)),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 2),
        "phases": phases,
    }
    if starved:
        record["advisory"] = True
        record["advisory_reason"] = (
            f"starved runner: {default_workers()} usable core(s) for "
            f"{BENCH_WORKERS} workers"
        )
    elif speedup < min_speedup and not enforce:
        record["advisory"] = True
        record["advisory_reason"] = (
            f"missed floor: {speedup:.2f}x < {min_speedup}x "
            f"(enforcement disabled)"
        )
    # Preserve the automaton prune record (test_perf_automaton.py) and
    # the interned-backend record (test_perf_interner.py) when present —
    # the three benchmarks share BENCH_mining.json.
    if BENCH_OUT.exists():
        try:
            prior = json.loads(BENCH_OUT.read_text())
        except ValueError:
            prior = {}
        for key in ("automaton", "interned"):
            if key in prior:
                record[key] = prior[key]
    BENCH_OUT.write_text(json.dumps(record, indent=2) + "\n")

    headline = (
        f"speedup: {speedup:.2f}x\n"
        if not starved
        else f"speedup: n/a ({default_workers()} core(s) for "
        f"{BENCH_WORKERS} workers — advisory record)\n"
    )
    print_table(
        f"Performance — sharded mining at {BENCH_WORKERS} workers",
        f"statements: {len(statements)}, shards: {len(spans)}\n"
        f"serial: {serial_seconds:.2f} s\n"
        f"parallel: {parallel_seconds:.2f} s\n"
        + headline
        + "\n"
        + format_phase_table(phases),
    )

    if starved:
        print(f"[advisory] {record['advisory_reason']}")
    elif speedup < min_speedup:
        message = (
            f"expected >= {min_speedup}x at {BENCH_WORKERS} workers, "
            f"got {speedup:.2f}x"
        )
        if enforce:
            pytest.fail(message)
        # Shared runners with noisy neighbours report instead of flaking;
        # the bit-identity assertion above is never relaxed.
        print(f"[advisory] {record['advisory_reason']}")
