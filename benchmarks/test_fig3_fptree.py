"""Figure 3: the FP-tree example and the patterns Algorithm 2 extracts.

The transaction multiset reproduces the is_last counts of Figure 3(a)
(NP2=33, NP5=15, NP4=14, NP6=13) and the extracted pattern table must
equal Figure 3(b) exactly.  The benchmark times tree growth plus
pattern generation.
"""

from conftest import print_table

from repro.core.namepath import NamePath, PathStep
from repro.core.patterns import PatternKind
from repro.mining.fptree import FPTree
from repro.mining.miner import generate_patterns


def np_(name: str) -> NamePath:
    return NamePath(prefix=(PathStep(value=name, index=0),), end=name.lower())


NP1, NP2, NP3, NP4, NP5, NP6 = (np_(f"NP{i}") for i in range(1, 7))


def grow_and_generate():
    tree = FPTree()
    for _ in range(33):
        tree.update([NP1, NP2])
    for _ in range(15):
        tree.update([NP1, NP3, NP5])
    for _ in range(13):
        tree.update([NP1, NP3, NP4, NP6])
    tree.update([NP1, NP3, NP4])
    patterns = generate_patterns(
        tree.root, [], PatternKind.CONFUSING_WORD, condition_subsets="full"
    )
    return tree, patterns


def test_figure3_fptree(benchmark):
    tree, patterns = benchmark(grow_and_generate)

    rows = {
        (tuple(sorted(p.condition)), next(iter(p.deduction)), p.support)
        for p in patterns
        if p.condition
    }
    expected = {
        ((NP1,), NP2, 33),
        ((NP1, NP3), NP5, 15),
        ((NP1, NP3), NP4, 14),
        ((NP1, NP3, NP4), NP6, 13),
    }
    assert rows == expected, rows

    lines = [f"{'condition':<18} {'deduction':<10} count"]
    for cond, deduct, count in sorted(expected, key=lambda r: -r[2]):
        cond_names = ", ".join(c.prefix[0].value for c in cond)
        lines.append(f"{cond_names:<18} {deduct.prefix[0].value:<10} {count}")
    print_table(
        "Figure 3(b) — name patterns extracted from the example FP tree",
        "\n".join(lines),
    )
