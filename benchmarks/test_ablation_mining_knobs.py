"""Design-choice ablations: the mining regularization knobs.

Two choices DESIGN.md calls out:

* **Condition subsets** (Algorithm 2's ``combinations``): enumerating
  condition subsets ("all") aggregates support across FP-tree branches
  and is what lets idioms generalize over incidental context paths;
  the "full" mode (one pattern per is_last node, as in the worked
  Figure 3 example) over-specializes.
* **Satisfaction-ratio pruning** (the paper's 0.8 threshold): lowering
  it admits noisy patterns (more violations, lower raw precision);
  raising it prunes real idioms away.
"""

from conftest import BENCH_MINING, print_table

from repro.core.namer import Namer, NamerConfig
from repro.evaluation.oracle import Oracle
from repro.mining.miner import MiningConfig


def _mine(corpus, **overrides):
    base = dict(
        min_pattern_support=BENCH_MINING.min_pattern_support,
        min_path_frequency=BENCH_MINING.min_path_frequency,
    )
    base.update(overrides)
    namer = Namer(NamerConfig(mining=MiningConfig(**base)))
    namer.mine(corpus)
    return namer


def test_condition_subsets_generalize(python_corpus, benchmark):
    namer_all = benchmark.pedantic(
        lambda: _mine(python_corpus, condition_subsets="all"),
        rounds=1,
        iterations=1,
    )
    namer_full = _mine(python_corpus, condition_subsets="full")

    violations_all = namer_all.all_violations()
    violations_full = namer_full.all_violations()
    oracle = Oracle(python_corpus)
    true_all = sum(oracle.label(v) for v in violations_all)
    true_full = sum(oracle.label(v) for v in violations_full)

    print_table(
        "Ablation — condition subset enumeration (Algorithm 2)",
        f"{'mode':<8} {'patterns':>9} {'violations':>11} {'true issues':>12}\n"
        f"{'all':<8} {len(namer_all.matcher.patterns):>9} "
        f"{len(violations_all):>11} {true_all:>12}\n"
        f"{'full':<8} {len(namer_full.matcher.patterns):>9} "
        f"{len(violations_full):>11} {true_full:>12}",
    )

    # Subset enumeration yields more (more general) patterns and finds
    # at least as many true issues.
    assert len(namer_all.matcher.patterns) >= len(namer_full.matcher.patterns)
    assert true_all >= true_full


def test_satisfaction_ratio_tradeoff(python_corpus, benchmark):
    oracle = Oracle(python_corpus)
    rows = []
    for ratio in (0.6, 0.8, 0.95):
        namer = _mine(python_corpus, min_satisfaction_ratio=ratio)
        violations = namer.all_violations()
        true = sum(oracle.label(v) for v in violations)
        precision = true / len(violations) if violations else 0.0
        rows.append((ratio, len(namer.matcher.patterns), len(violations), true, precision))
    benchmark.pedantic(
        lambda: _mine(python_corpus, min_satisfaction_ratio=0.8),
        rounds=1,
        iterations=1,
    )

    body = f"{'ratio':>6} {'patterns':>9} {'violations':>11} {'true':>6} {'precision':>10}\n"
    body += "\n".join(
        f"{r:>6.2f} {p:>9} {v:>11} {t:>6} {prec:>10.0%}" for r, p, v, t, prec in rows
    )
    print_table("Ablation — pruneUncommon satisfaction-ratio threshold", body)

    low, default, high = rows
    # Lower threshold admits noisier patterns: more violations, lower
    # raw precision than the strict setting.
    assert low[2] >= default[2] >= high[2]
    assert low[4] <= high[4] + 1e-9
