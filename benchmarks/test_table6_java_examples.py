"""Table 6: example reports by Namer for Java.

Regenerates the table from the fitted Java system and verifies that the
paper's marquee Java issue kinds — the ``double`` loop index and the
assert-API misuse — are among the detected fixes.
"""

from conftest import print_table

from repro.evaluation.examples import collect_example_reports


def test_table6_java_examples(java_ablation, java_oracle, benchmark):
    namer = java_ablation.namer
    table = benchmark.pedantic(
        lambda: collect_example_reports(namer, java_oracle, per_section=3),
        rounds=1,
        iterations=1,
    )

    print_table("Table 6 — example Java reports", table.format())

    assert table.semantic_defects or table.code_quality_issues

    found = {(v.observed, v.suggested) for v in namer.all_violations()}
    assert ("double", "int") in found, "Table 6 example 2: double loop index"
    assert ("True", "Equals") in found, "Java assertTrue misuse"
