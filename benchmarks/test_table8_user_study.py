"""Tables 7 and 8: the user study on code-quality issue severity.

Table 7 lists the five issues shown to developers (one per category);
Table 8 records under which conditions each of the 7 participants would
accept the fix.  The study is simulated with a seeded response model
calibrated to the paper's distribution (see repro.evaluation.user_study).

Expected shape: most issues accepted, mostly only with tool support
(IDE plugin / automatic pull request); rejections are rare.
"""

from conftest import print_table

from repro.evaluation.user_study import STUDY_ISSUES, simulate_user_study


def test_table8_user_study(benchmark):
    rows = benchmark(lambda: simulate_user_study(participants=7, seed=2021))

    issue_lines = [f"  {cat.value:<20} {text}" for cat, text in STUDY_ISSUES.items()]
    row_lines = [row.format() for row in rows.values()]
    print_table(
        "Tables 7+8 — user study issues and simulated responses",
        "Table 7 issues:\n" + "\n".join(issue_lines) + "\n\nTable 8 responses:\n"
        + "\n".join(row_lines),
    )

    total_accepted = sum(r.accepted for r in rows.values())
    total_rejected = sum(r.not_accepted for r in rows.values())
    total_manual = sum(r.manual_fix for r in rows.values())
    total_tool = sum(r.ide_plugin + r.pull_request for r in rows.values())

    assert total_accepted + total_rejected == 35  # 7 participants x 5 issues
    # Paper: only 5 of 35 not accepted, 9 would even be fixed manually.
    assert total_rejected <= 10
    assert total_manual >= 4
    # Most acceptances require tool support, the paper's takeaway.
    assert total_tool > total_manual
