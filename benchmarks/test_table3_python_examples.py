"""Table 3: example reports by Namer for Python.

Regenerates the table's three sections (semantic defects, code quality
issues, false positives) by sampling the fitted system's classified
reports by oracle outcome, and verifies the signature example — the
assertTrue -> assertEqual fix — appears with a correctly rendered
identifier.  The benchmark times report collection.
"""

from conftest import print_table

from repro.evaluation.examples import collect_example_reports


def test_table3_python_examples(python_ablation, python_oracle, benchmark):
    namer = python_ablation.namer
    table = benchmark.pedantic(
        lambda: collect_example_reports(namer, python_oracle, per_section=3),
        rounds=1,
        iterations=1,
    )

    print_table("Table 3 — example Python reports", table.format())

    assert table.semantic_defects, "must sample at least one semantic defect"
    assert table.code_quality_issues, "must sample code quality issues"

    # The Figure 2 class of fixes (True -> Equal) renders correctly.
    reports = namer.classify(namer.all_violations())
    assert_fixes = [r for r in reports if r.observed in ("True", "Equals")]
    assert assert_fixes
    assert assert_fixes[0].fixed_identifier() == "assertEqual"
