"""Table 5: precision of Namer and its ablations on Java.

Paper's rows: Namer 68%, w/o C 31%, w/o A 48%, w/o C & A 29% — the same
ordering reproduced here on the synthetic Java corpus.  The benchmark
times the Java inference kernel.
"""

from conftest import print_table


def test_table5_java_precision(java_ablation, benchmark):
    result = java_ablation
    namer = result.namer

    violations = namer.all_violations()
    benchmark.pedantic(
        lambda: namer.classify(violations[:100]), rounds=3, iterations=1
    )

    print_table("Table 5 — Java precision and ablations", result.format_table())

    full = result.row("Namer")
    no_c = result.row("w/o C")
    no_a = result.row("w/o A")
    no_ca = result.row("w/o C & A")

    assert full.precision > no_c.precision > no_ca.precision
    assert full.precision >= no_a.precision
    assert no_c.false_positives > full.false_positives
    assert full.precision >= 0.6
