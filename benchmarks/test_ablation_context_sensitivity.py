"""Design-choice ablation: context sensitivity of the points-to analysis.

The paper uses k-call-site sensitivity with k=5 and falls back when a
file would explode past 8 contexts/method.  This ablation measures what
k buys on the corpus: the number of variables whose origin resolves
precisely (not top), which is exactly what feeds the AST+ decoration.
"""

from conftest import print_table

from repro.analysis.origins import compute_origins
from repro.analysis.pointsto import PointsToConfig
from repro.lang import parse_source


def _resolved_origins(corpus, k: int, max_files: int = 80) -> tuple[int, float]:
    total = 0
    contexts = []
    for count, (repo, f) in enumerate(corpus.files()):
        if count >= max_files:
            break
        try:
            module = parse_source(f.source, f.language, f.path, repo.name)
        except ValueError:
            continue
        result = compute_origins(module, PointsToConfig(k=k))
        total += sum(len(env) for env in result.by_function.values())
        contexts.append(result.pointsto.avg_contexts)
    avg_ctx = sum(contexts) / len(contexts) if contexts else 0.0
    return total, avg_ctx


def test_context_sensitivity(python_corpus, benchmark):
    resolved_k5, ctx_k5 = benchmark.pedantic(
        lambda: _resolved_origins(python_corpus, k=5), rounds=1, iterations=1
    )
    resolved_k0, ctx_k0 = _resolved_origins(python_corpus, k=0)

    print_table(
        "Ablation — k-call-site sensitivity (Section 4.1)",
        f"{'k':>3} {'resolved origins':>17} {'avg contexts/method':>20}\n"
        f"{5:>3} {resolved_k5:>17} {ctx_k5:>20.2f}\n"
        f"{0:>3} {resolved_k0:>17} {ctx_k0:>20.2f}",
    )

    # Context sensitivity never *loses* origins (monotone precision),
    # and the corpus stays far below the 8-contexts/method explosion cap.
    assert resolved_k5 >= resolved_k0
    assert ctx_k5 < 8.0
