"""Performance benchmark: persistent detect cache across engine restarts.

Runs a batch of files through a fresh :class:`AnalysisEngine` with
``cache_dir`` set (cold: full prepare + detect per file), then builds a
*new* engine over the same cache directory — its in-memory LRU is
empty, so every answer comes off disk — and writes the measurements to
``BENCH_detect.json`` at the repo root.

The report-equality assertion is hard; the >= 5x warm floor follows the
usual protocol (``REPRO_BENCH_MIN_WARM_SPEEDUP`` overrides it,
``REPRO_BENCH_ENFORCE_SPEEDUP=0`` demotes a miss to an advisory).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from conftest import BENCH_CONFIG, bench_machine, print_table

from repro.core.namer import Namer
from repro.service.engine import AnalysisEngine, AnalysisRequest

BENCH_OUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_detect.json"


@pytest.fixture(scope="module")
def detect_setup():
    from repro.corpus.generator import GeneratorConfig, generate_python_corpus

    corpus = generate_python_corpus(
        GeneratorConfig(num_repos=30, issue_rate=0.12, seed=7)
    )
    namer = Namer(BENCH_CONFIG)
    namer.mine(corpus)
    requests = [
        AnalysisRequest(source=source.source, path=source.path, repo=repo.name)
        for repo, source in corpus.files()
    ]
    return namer, requests


def _run(namer, requests, cache_dir) -> tuple[list, float]:
    engine = AnalysisEngine(namer=namer, workers=2, cache_dir=str(cache_dir))
    try:
        start = time.perf_counter()
        results = engine.analyze_many(requests)
        return results, time.perf_counter() - start
    finally:
        engine.shutdown(drain=False, timeout=10)


def test_detect_warm_cache_speedup(detect_setup, tmp_path):
    namer, requests = detect_setup
    cache_dir = tmp_path / "detect-cache"

    cold, cold_seconds = _run(namer, requests, cache_dir)
    warm, warm_seconds = _run(namer, requests, cache_dir)

    assert [r.reports for r in warm] == [r.reports for r in cold], (
        "disk-served reports must match the cold analysis exactly"
    )
    served_from_disk = sum(1 for r in warm if r.cache_level == "disk")
    clean = sum(1 for r in cold if r.error is None)
    assert served_from_disk == clean, (
        "every error-free file must be served from disk on the warm run"
    )

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_WARM_SPEEDUP", "5"))
    enforce = os.environ.get("REPRO_BENCH_ENFORCE_SPEEDUP", "1") != "0"
    record = {
        **bench_machine(),
        "files": len(requests),
        "violations": sum(len(r.reports) for r in cold),
        "served_from_disk": served_from_disk,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "speedup": round(speedup, 2),
    }
    # Warm speedup comes from skipped work, not extra cores, so the
    # only advisory cause here is a missed floor with enforcement off.
    if speedup < min_speedup and not enforce:
        record["advisory"] = True
        record["advisory_reason"] = (
            f"missed floor: {speedup:.2f}x < {min_speedup}x "
            f"(enforcement disabled)"
        )
    BENCH_OUT.write_text(json.dumps(record, indent=2) + "\n")

    print_table(
        "Performance — persistent detect cache (engine restart)",
        f"files: {len(requests)}, served from disk: {served_from_disk}\n"
        f"cold: {cold_seconds:.2f} s\n"
        f"warm: {warm_seconds:.2f} s\n"
        f"speedup: {speedup:.1f}x",
    )

    if speedup < min_speedup:
        message = (
            f"expected warm detect >= {min_speedup}x faster than cold, "
            f"got {speedup:.2f}x"
        )
        if enforce:
            pytest.fail(message)
        print(f"[advisory] {record['advisory_reason']}")
