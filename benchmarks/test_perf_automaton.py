"""Performance benchmark: the compiled matching automaton.

Mines the serving-benchmark corpus once, then times the serial
``match`` phase of ``Namer.detect_many`` twice over the same prepared
batch: once through the legacy per-candidate ``check_pattern`` path
(``PatternMatcher(use_automaton=False)``) and once through the shared
:class:`~repro.mining.automaton.MatchAutomaton`.  Report JSON must be
byte-identical between the two arms — that assertion is the hard
invariant and is never relaxed.  The prune-side arm repeats the
comparison on the miner's ``_count_matches_with`` counters.

The speedup floor follows the usual protocol: the automaton must beat
the legacy matcher by ``REPRO_BENCH_MIN_AUTOMATON_SPEEDUP`` (default
2.0x — the legacy arm also benefits from the key-memoization work, so
this is a conservative floor for the 3x paper target measured against
the pre-change tree) unless ``REPRO_BENCH_ENFORCE_SPEEDUP=0`` demotes
a miss to an advisory record.  Both arms are single-process, so there
is no starved-runner case.  Measurements land under the ``"automaton"``
key of ``BENCH_serving.json`` (detect side) and ``BENCH_mining.json``
(prune side), preserving whatever else those files already hold.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from conftest import bench_machine, print_table

from repro.core.namer import Namer, NamerConfig
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.mining.matcher import PatternMatcher
from repro.mining.miner import MiningConfig, _count_matches_with
from repro.parallel.profiler import PhaseProfiler

BENCH_SERVING = pathlib.Path(__file__).resolve().parents[1] / "BENCH_serving.json"
BENCH_MINING = pathlib.Path(__file__).resolve().parents[1] / "BENCH_mining.json"
MINING = MiningConfig(min_pattern_support=20, min_path_frequency=8)
ROUNDS = 2  # best-of: the first round pays cache warm-up


@pytest.fixture(scope="module")
def detection_batch():
    corpus = generate_python_corpus(
        GeneratorConfig(num_repos=60, issue_rate=0.12, seed=7)
    )
    namer = Namer(NamerConfig(mining=MINING))
    namer.mine(corpus)
    violations = namer.all_violations()[:80]
    namer.train(violations, [i % 2 for i in range(len(violations))])
    return namer, list(namer.prepared)


def _merge_record(path: pathlib.Path, record: dict) -> None:
    """Set the ``"automaton"`` key, keeping the file's other records."""
    prior = {}
    if path.exists():
        try:
            prior = json.loads(path.read_text())
        except ValueError:
            prior = {}
    prior["automaton"] = record
    path.write_text(json.dumps(prior, indent=2) + "\n")


def _match_seconds(namer, prepared) -> tuple[str, float]:
    """Report blob plus best-of-ROUNDS serial match-phase seconds."""
    blob = ""
    best = float("inf")
    for _ in range(ROUNDS):
        profiler = PhaseProfiler()
        groups = namer.detect_many(prepared, profiler=profiler)
        blob = json.dumps(
            [[r.to_json() for r in g] for g in groups], sort_keys=True
        )
        match = [r for r in profiler.to_json() if r["phase"] == "match"]
        assert len(match) == 1
        best = min(best, match[0]["seconds"])
    return blob, best


def test_automaton_match_speedup(detection_batch):
    namer, prepared = detection_batch
    auto_matcher = namer.matcher
    assert auto_matcher._automaton is not None
    legacy_matcher = PatternMatcher(
        auto_matcher.patterns,
        prefix_counts=auto_matcher._corpus_counts,
        use_automaton=False,
    )

    auto_blob, auto_seconds = _match_seconds(namer, prepared)
    try:
        namer.matcher = legacy_matcher
        legacy_blob, legacy_seconds = _match_seconds(namer, prepared)
    finally:
        namer.matcher = auto_matcher

    assert auto_blob == legacy_blob, (
        "automaton reports must be byte-identical to the legacy matcher"
    )

    # Prune-side arm: identical counters, one timed pass per backend.
    path_lists = [ps.paths for pf in prepared for ps in pf.statements]
    started = time.perf_counter()
    auto_counts = _count_matches_with(auto_matcher, path_lists)
    auto_prune = time.perf_counter() - started
    started = time.perf_counter()
    legacy_counts = _count_matches_with(legacy_matcher, path_lists)
    legacy_prune = time.perf_counter() - started
    assert auto_counts == legacy_counts, (
        "prune counts must be backend-independent"
    )

    speedup = legacy_seconds / max(auto_seconds, 1e-9)
    prune_speedup = legacy_prune / max(auto_prune, 1e-9)
    min_speedup = float(
        os.environ.get("REPRO_BENCH_MIN_AUTOMATON_SPEEDUP", "2.0")
    )
    enforce = os.environ.get("REPRO_BENCH_ENFORCE_SPEEDUP", "1") != "0"
    record = {
        **bench_machine(),
        "files": len(prepared),
        "patterns": len(auto_matcher.patterns),
        "legacy_match_seconds": round(legacy_seconds, 3),
        "automaton_match_seconds": round(auto_seconds, 3),
        "speedup": round(speedup, 2),
    }
    if speedup < min_speedup and not enforce:
        record["advisory"] = True
        record["advisory_reason"] = (
            f"missed floor: {speedup:.2f}x < {min_speedup}x "
            f"(enforcement disabled)"
        )
    _merge_record(BENCH_SERVING, record)
    _merge_record(
        BENCH_MINING,
        {
            **bench_machine(),
            "statements": len(path_lists),
            "patterns": len(auto_matcher.patterns),
            "legacy_prune_seconds": round(legacy_prune, 3),
            "automaton_prune_seconds": round(auto_prune, 3),
            "speedup": round(prune_speedup, 2),
        },
    )

    print_table(
        "Performance — compiled matching automaton (serial match phase)",
        f"files: {len(prepared)}, patterns: {len(auto_matcher.patterns)}\n"
        f"legacy match: {legacy_seconds:.2f} s\n"
        f"automaton match: {auto_seconds:.2f} s\n"
        f"speedup: {speedup:.2f}x\n"
        f"prune: {legacy_prune:.2f} s -> {auto_prune:.2f} s "
        f"({prune_speedup:.2f}x)",
    )

    if speedup < min_speedup:
        message = (
            f"expected >= {min_speedup}x automaton match speedup, "
            f"got {speedup:.2f}x"
        )
        if enforce:
            pytest.fail(message)
        print(f"[advisory] {record['advisory_reason']}")
