"""Design-choice ablation: multi-level features in the classifier.

Section 4.2/5.5 argue that computing the same statistics at *three*
levels (file, repository, dataset) — rather than one, as prior anomaly
detectors did — is a key reason the classifier distinguishes true
issues from false positives.  This ablation retrains the classifier on
level-restricted feature subsets and compares cross-validated accuracy.
"""

import numpy as np
from conftest import print_table

from repro.evaluation.cross_validation import labeled_features
from repro.ml.linear import LinearSVM
from repro.ml.model_selection import repeated_holdout
from repro.ml.pipeline import ClassifierPipeline

#: feature indices per statistical level (see FEATURE_NAMES)
LEVEL_FEATURES = {
    "file only": [1, 3, 6, 9],
    "dataset only": [5, 8, 11],
    "all levels": list(range(17)),
}


def test_multi_level_features_help(python_ablation, python_oracle, benchmark):
    namer = python_ablation.namer
    X, y = labeled_features(namer, python_oracle, max_samples=240, seed=5)

    rng = np.random.default_rng(5)
    results = {}
    for name, indices in LEVEL_FEATURES.items():
        subset = X[:, indices]
        results[name] = repeated_holdout(
            lambda: ClassifierPipeline(LinearSVM()),
            subset,
            y,
            repeats=20,
            rng=rng,
        )
    benchmark.pedantic(
        lambda: repeated_holdout(
            lambda: ClassifierPipeline(LinearSVM()), X, y, repeats=5,
            rng=np.random.default_rng(0),
        ),
        rounds=1,
        iterations=1,
    )

    body = "\n".join(
        f"{name:<14} {result.summary()}" for name, result in results.items()
    )
    print_table("Ablation — classifier feature levels (Section 5.5)", body)

    # The full multi-level feature set must beat both single-level
    # restrictions on *precision* — the metric the paper's classifier
    # exists to maximize (Section 4.2: "it is critical to prune false
    # positives").
    full = results["all levels"].mean_precision
    assert full >= results["file only"].mean_precision
    assert full >= results["dataset only"].mean_precision
    # And it must not be materially worse on accuracy either.
    assert (
        results["all levels"].mean_accuracy
        >= max(r.mean_accuracy for r in results.values()) - 0.05
    )
