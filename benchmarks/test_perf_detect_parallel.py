"""Performance benchmark: parallel batch detection.

Mines once, prepares a corpus-sized batch, then times
``Namer.detect_many`` serially and across a 4-worker process pool via
:func:`repro.evaluation.speed.measure_detection_throughput`, asserting
the two produce byte-identical report JSON (the hard invariant) and
writing the measurements — including the match/featurize/classify
phase rows of both arms — to ``BENCH_serving.json`` at the repo root.

The >= 2x throughput floor follows the usual protocol: it is enforced
only when the machine actually has the benchmark's worker count
(starved runners record the measurement stamped ``"advisory": true``
and skip the speedup headline), ``REPRO_BENCH_MIN_DETECT_SPEEDUP``
overrides the floor, and ``REPRO_BENCH_ENFORCE_SPEEDUP=0`` demotes a
miss to an advisory message.  The equivalence assertion is never
relaxed by any of them.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from conftest import bench_machine, print_table

from repro.core.namer import Namer, NamerConfig
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.evaluation.speed import measure_detection_throughput
from repro.mining.miner import MiningConfig
from repro.parallel.executor import default_workers
from repro.parallel.profiler import format_phase_table

BENCH_WORKERS = 4
BENCH_OUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_serving.json"
MINING = MiningConfig(min_pattern_support=20, min_path_frequency=8)
ROUNDS = 2  # best-of: the first parallel round pays fork warm-up


@pytest.fixture(scope="module")
def detection_batch():
    """A mined namer plus the prepared batch detection will run over."""
    corpus = generate_python_corpus(
        GeneratorConfig(num_repos=60, issue_rate=0.12, seed=7)
    )
    namer = Namer(NamerConfig(mining=MINING))
    namer.mine(corpus)
    violations = namer.all_violations()[:80]
    namer.train(violations, [i % 2 for i in range(len(violations))])
    return namer, list(namer.prepared)


def _report_blob(namer, prepared, workers) -> str:
    groups = namer.detect_many(prepared, workers=workers)
    return json.dumps(
        [[r.to_json() for r in g] for g in groups], sort_keys=True
    )


def test_parallel_detection_throughput(detection_batch):
    namer, prepared = detection_batch

    assert _report_blob(namer, prepared, BENCH_WORKERS) == _report_blob(
        namer, prepared, 1
    ), "parallel detect_many must be byte-identical to serial"

    serial = measure_detection_throughput(
        namer, prepared, workers=1, rounds=ROUNDS
    )
    parallel = measure_detection_throughput(
        namer, prepared, workers=BENCH_WORKERS, rounds=ROUNDS
    )
    assert parallel.reports == serial.reports

    speedup = serial.seconds / max(parallel.seconds, 1e-9)
    starved = default_workers() < BENCH_WORKERS
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_DETECT_SPEEDUP", "2.0"))
    enforce = os.environ.get("REPRO_BENCH_ENFORCE_SPEEDUP", "1") != "0"
    record = {
        "workers": BENCH_WORKERS,
        "cores": default_workers(),
        **bench_machine(),
        "files": serial.files,
        "reports": serial.reports,
        "serial": serial.to_json(),
        "parallel": parallel.to_json(),
        "speedup": round(speedup, 2),
    }
    # An advisory record says *why* it is advisory: a starved runner
    # never measured real parallelism; a missed floor with enforcement
    # off measured it and fell short.
    if starved:
        record["advisory"] = True
        record["advisory_reason"] = (
            f"starved runner: {default_workers()} usable core(s) for "
            f"{BENCH_WORKERS} workers"
        )
    elif speedup < min_speedup and not enforce:
        record["advisory"] = True
        record["advisory_reason"] = (
            f"missed floor: {speedup:.2f}x < {min_speedup}x "
            f"(enforcement disabled)"
        )
    # Preserve the HA cluster record (test_perf_cluster_ha.py), the
    # automaton record (test_perf_automaton.py), and the interned-
    # backend record (test_perf_interner.py) when already in the
    # file — the four benchmarks share BENCH_serving.json.
    if BENCH_OUT.exists():
        try:
            prior = json.loads(BENCH_OUT.read_text())
        except ValueError:
            prior = {}
        for key in ("cluster", "automaton", "interned"):
            if key in prior:
                record[key] = prior[key]
    BENCH_OUT.write_text(json.dumps(record, indent=2) + "\n")

    headline = (
        f"speedup: {speedup:.2f}x\n"
        if not starved
        else f"speedup: n/a ({default_workers()} core(s) for "
        f"{BENCH_WORKERS} workers — advisory record)\n"
    )
    print_table(
        f"Performance — batch detection at {BENCH_WORKERS} workers",
        f"files: {serial.files}, reports: {serial.reports}\n"
        f"serial: {serial.seconds:.2f} s "
        f"({serial.files_per_second:.0f} files/s)\n"
        f"parallel: {parallel.seconds:.2f} s "
        f"({parallel.files_per_second:.0f} files/s)\n"
        + headline
        + "\nserial phases:\n"
        + format_phase_table(serial.phases)
        + "\n\nparallel phases:\n"
        + format_phase_table(parallel.phases),
    )

    if starved:
        print(f"[advisory] {record['advisory_reason']}")
    elif speedup < min_speedup:
        message = (
            f"expected >= {min_speedup}x detection throughput at "
            f"{BENCH_WORKERS} workers, got {speedup:.2f}x"
        )
        if enforce:
            pytest.fail(message)
        # Shared runners with noisy neighbours report instead of flaking;
        # the byte-identity assertion above is never relaxed.
        print(f"[advisory] {record['advisory_reason']}")
