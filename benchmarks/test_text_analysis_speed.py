"""Section 5.1 text: per-file analysis speed.

The paper reports ~39ms/file for Python and ~20ms/file for Java on its
28-core server, runtime dominated by the Section 4.1 analyses.  The
benchmark times exactly that stage (parse + facts + points-to +
origins) per file; the assertion only requires interactive-scale
throughput, since absolute timings are hardware-bound.
"""

from conftest import print_table

from repro.evaluation.speed import measure_analysis_speed


def test_analysis_speed_python(python_corpus, benchmark):
    report = benchmark.pedantic(
        lambda: measure_analysis_speed(python_corpus, max_files=60),
        rounds=1,
        iterations=1,
    )
    print_table("Section 5.1 text — Python analysis speed", str(report))
    assert report.files == 60
    assert report.ms_per_file < 500  # interactive-scale per-file analysis


def test_analysis_speed_java(java_corpus, benchmark):
    report = benchmark.pedantic(
        lambda: measure_analysis_speed(java_corpus, max_files=60),
        rounds=1,
        iterations=1,
    )
    print_table("Section 5.1 text — Java analysis speed", str(report))
    assert report.files == 60
    assert report.ms_per_file < 500
