"""Table 10: GGNN / GREAT / Namer precision on Python.

Paper's rows: GGNN 16%, GREAT 8%, Namer 70%.  Both networks are trained
on synthetic VarMisuse corruptions of the corpus (their only possible
training data), reach high held-out synthetic accuracy, and are then
run on the real corpus with a report budget of ~Namer/5 — where their
precision collapses (the distribution-mismatch result).
"""

import pytest
from conftest import print_table

from repro.baselines.training import TrainConfig
from repro.evaluation.dl_comparison import run_dl_comparison


@pytest.fixture(scope="module")
def comparison(python_corpus, python_ablation):
    return run_dl_comparison(
        python_corpus,
        namer_report_count=python_ablation.row("Namer").reports,
        train_config=TrainConfig(epochs=2, lr=2e-3),
        seed=0,
    )


def test_table10_dl_comparison_python(comparison, python_ablation, benchmark):
    ggnn = comparison["GGNN"]
    great = comparison["GREAT"]
    namer_row = python_ablation.row("Namer")

    # Timed kernel: forward passes of the GGNN over test samples.
    batch = ggnn.test_samples[:20]
    benchmark.pedantic(
        lambda: [ggnn.model.predict_probs(s) for s in batch],
        rounds=2,
        iterations=1,
    )

    body = "\n".join(
        [
            ggnn.row.format() + f"   [synthetic: {ggnn.synthetic}]",
            great.row.format() + f"   [synthetic: {great.synthetic}]",
            namer_row.format(),
        ]
    )
    print_table("Table 10 — DL baselines vs Namer (Python)", body)

    # Namer dominates both baselines by a wide margin.
    assert namer_row.precision > ggnn.row.precision + 0.2
    assert namer_row.precision > great.row.precision + 0.2
    # The baselines were *accurate on synthetic bugs* nonetheless.
    assert ggnn.synthetic.classification >= 0.6
    assert great.synthetic.classification >= 0.6
    # Report budgets: ~5x fewer reports than Namer.
    assert ggnn.row.reports <= max(5, namer_row.reports // 5) + 1
