"""Tests for the synthetic corpus generators and dedup."""

import pytest

from repro.corpus.dedup import dedup_corpus, dedup_files, prune_forks
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.corpus.javagen import generate_java_corpus
from repro.corpus.model import Corpus, IssueCategory, Repository, SourceFile
from repro.corpus.vocabulary import Vocabulary
from repro.lang import parse_source

import random


class TestVocabulary:
    def test_seeded_determinism(self):
        a = Vocabulary(random.Random(1))
        b = Vocabulary(random.Random(1))
        assert [a.noun() for _ in range(5)] == [b.noun() for _ in range(5)]

    def test_name_styles(self):
        v = Vocabulary(random.Random(2))
        assert "_" in v.snake_name(2)
        camel = v.camel_name(2)
        assert camel[0].islower() and any(c.isupper() for c in camel)
        assert v.pascal_name(1)[0].isupper()

    def test_typo_differs(self):
        v = Vocabulary(random.Random(3))
        for word in ("port", "label", "fullpath"):
            assert v.typo(word) != word

    def test_typo_short_word(self):
        v = Vocabulary(random.Random(4))
        assert v.typo("ab") == "abb"


@pytest.mark.parametrize(
    "generate, language",
    [(generate_python_corpus, "python"), (generate_java_corpus, "java")],
)
class TestGenerators:
    def test_deterministic(self, generate, language):
        a = generate(GeneratorConfig(num_repos=3, seed=42))
        b = generate(GeneratorConfig(num_repos=3, seed=42))
        assert [f.source for _, f in a.files()] == [f.source for _, f in b.files()]

    def test_different_seeds_differ(self, generate, language):
        a = generate(GeneratorConfig(num_repos=3, seed=1))
        b = generate(GeneratorConfig(num_repos=3, seed=2))
        assert [f.source for _, f in a.files()] != [f.source for _, f in b.files()]

    def test_all_files_parse(self, generate, language):
        corpus = generate(GeneratorConfig(num_repos=4, seed=7))
        for repo, f in corpus.files():
            parse_source(f.source, language, f.path, repo.name)  # must not raise

    def test_commits_parse(self, generate, language):
        corpus = generate(GeneratorConfig(num_repos=3, seed=7))
        assert corpus.commits
        for commit in corpus.commits:
            parse_source(commit.before, language)
            parse_source(commit.after, language)

    def test_ground_truth_points_at_real_lines(self, generate, language):
        corpus = generate(GeneratorConfig(num_repos=4, seed=7, issue_rate=0.3))
        assert corpus.ground_truth
        files = {f.path: f for _, f in corpus.files()}
        for issue in corpus.ground_truth:
            source = files[issue.file_path].source.splitlines()
            assert 1 <= issue.line <= len(source)
            line_text = source[issue.line - 1]
            assert issue.observed in line_text or issue.observed in "".join(source)

    def test_issue_rate_scales_truth(self, generate, language):
        low = generate(GeneratorConfig(num_repos=4, seed=7, issue_rate=0.02))
        high = generate(GeneratorConfig(num_repos=4, seed=7, issue_rate=0.4))
        assert len(high.ground_truth) > len(low.ground_truth)

    def test_category_variety(self, generate, language):
        corpus = generate(GeneratorConfig(num_repos=10, seed=7, issue_rate=0.3))
        categories = {i.category for i in corpus.ground_truth}
        assert IssueCategory.SEMANTIC_DEFECT in categories
        assert len(categories) >= 4


class TestCorpusModel:
    def test_file_count(self):
        corpus = generate_python_corpus(GeneratorConfig(num_repos=2, seed=1))
        assert corpus.file_count() == sum(len(r.files) for r in corpus.repositories)

    def test_truth_at(self):
        corpus = generate_python_corpus(
            GeneratorConfig(num_repos=4, seed=1, issue_rate=0.5)
        )
        issue = corpus.ground_truth[0]
        assert corpus.truth_at(issue.file_path, issue.line) == issue
        assert corpus.truth_at("nope.py", 1) is None


class TestDedup:
    def make_corpus(self):
        f1 = SourceFile(path="a.py", source="x = 1\n")
        f2 = SourceFile(path="b.py", source="x = 1\n")  # duplicate content
        f3 = SourceFile(path="c.py", source="y = 2\n")
        original = Repository(name="orig", files=[f1, f3])
        fork = Repository(
            name="fork", files=[SourceFile(path="a.py", source="x = 1\n"),
                                SourceFile(path="c.py", source="y = 2\n")]
        )
        extra = Repository(name="extra", files=[f2])
        return Corpus(repositories=[original, fork, extra])

    def test_dedup_files(self):
        corpus = self.make_corpus()
        prune_forks(corpus)
        removed = dedup_files(corpus)
        assert removed >= 1
        sources = [f.source for _, f in corpus.files()]
        assert len(sources) == len(set(sources))

    def test_prune_forks(self):
        corpus = self.make_corpus()
        removed = prune_forks(corpus)
        assert removed == 1
        assert [r.name for r in corpus.repositories] == ["orig", "extra"]

    def test_dedup_corpus(self):
        corpus = self.make_corpus()
        forks, files = dedup_corpus(corpus)
        assert forks == 1 and files == 1

    def test_synthetic_corpus_is_dedup_clean(self):
        corpus = generate_python_corpus(GeneratorConfig(num_repos=3, seed=1))
        forks, _ = dedup_corpus(corpus)
        assert forks == 0
