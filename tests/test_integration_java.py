"""Integration test: the full Java pipeline end to end."""

import pytest

from repro.core.namer import Namer, NamerConfig
from repro.evaluation.oracle import Oracle
from repro.mining.miner import MiningConfig


@pytest.fixture(scope="module")
def java_namer(small_java_corpus):
    namer = Namer(
        NamerConfig(mining=MiningConfig(min_pattern_support=8, min_path_frequency=4))
    )
    namer.mine(small_java_corpus)
    return namer


def test_java_mining_produces_patterns(java_namer):
    assert java_namer.summary.num_patterns > 0
    assert java_namer.summary.total_statements > 0


def test_java_confusing_pairs(java_namer):
    pairs = set(java_namer.pairs.counts)
    assert ("double", "int") in pairs
    assert ("get", "print") in pairs or ("Throwable", "Exception") in pairs


def test_java_violations_find_injections(small_java_corpus, java_namer):
    oracle = Oracle(small_java_corpus)
    violations = java_namer.all_violations()
    assert violations
    true_hits = [v for v in violations if oracle.label(v) == 1]
    assert true_hits, "at least one injected Java issue must be found"


def test_java_double_loop_index_detected(java_namer):
    violations = java_namer.all_violations()
    found = {(v.observed, v.suggested) for v in violations}
    assert ("double", "int") in found


def test_java_statement_provenance(java_namer):
    for violation in java_namer.all_violations()[:10]:
        assert violation.statement.file_path.endswith(".java")
        assert violation.statement.line >= 1
