"""Tests for the FP tree, including the worked example of Figure 3."""

from repro.core.namepath import NamePath, PathStep
from repro.core.patterns import PatternKind
from repro.mining.fptree import FPNode, FPTree
from repro.mining.miner import generate_patterns


def np_(name: str) -> NamePath:
    """Distinct single-step paths standing in for NP1..NP6."""
    return NamePath(prefix=(PathStep(value=name, index=0),), end=name.lower())


NP1, NP2, NP3, NP4, NP5, NP6 = (np_(f"NP{i}") for i in range(1, 7))


def figure3_tree() -> FPTree:
    """Grow the FP tree of Figure 3(a).

    The figure's node counts are illustrative (33 + 32 > 44, so no
    single transaction multiset yields them exactly); what matters for
    Algorithm 2 — and what Figure 3(b) derives — are the counts at the
    ``is_last`` nodes: NP2=33, NP5=15, NP4=14, NP6=13.  We insert the
    minimal transaction multiset producing exactly those.
    """
    tree = FPTree()
    for _ in range(33):
        tree.update([NP1, NP2])
    for _ in range(15):
        tree.update([NP1, NP3, NP5])
    for _ in range(13):
        tree.update([NP1, NP3, NP4, NP6])
    # One transaction ends at NP4 itself (14 total at the NP4 node).
    tree.update([NP1, NP3, NP4])
    return tree


class TestFPNode:
    def test_child_creates_once(self):
        root = FPNode()
        a = root.child(NP1)
        assert root.child(NP1) is a

    def test_walk(self):
        tree = figure3_tree()
        assert tree.node_count() == 6


class TestFPTree:
    def test_counts_match_figure3(self):
        tree = figure3_tree()
        n1 = tree.root.children[NP1]
        assert n1.count == 62  # all transactions share the NP1 prefix
        assert n1.children[NP2].count == 33
        assert n1.children[NP3].children[NP4].count == 14
        assert n1.children[NP3].children[NP5].count == 15
        assert n1.children[NP3].children[NP4].children[NP6].count == 13

    def test_is_last_flags(self):
        tree = figure3_tree()
        n1 = tree.root.children[NP1]
        assert n1.children[NP2].is_last
        assert n1.children[NP3].children[NP5].is_last
        assert n1.children[NP3].children[NP4].is_last
        assert not n1.children[NP3].is_last

    def test_empty_transaction_ignored(self):
        tree = FPTree()
        tree.update([])
        assert tree.transaction_count == 0

    def test_depth(self):
        assert figure3_tree().depth() == 4

    def test_transaction_count(self):
        assert figure3_tree().transaction_count == 62


class TestGeneratePatternsOnFigure3:
    def test_extracted_patterns_match_figure3b(self):
        """Algorithm 2 over Figure 3(a) must produce exactly the four
        (condition, deduction, count) rows of Figure 3(b)."""
        tree = figure3_tree()
        patterns = generate_patterns(
            tree.root, [], PatternKind.CONFUSING_WORD, condition_subsets="full"
        )
        rows = {
            (tuple(sorted(p.condition)), tuple(p.deduction)[0], p.support)
            for p in patterns
            if p.condition  # the lone NP1 transactions have no condition
        }
        assert ((NP1,), NP2, 33) in rows
        assert ((NP1, NP3), NP5, 15) in rows
        assert ((NP1, NP3), NP4, 14) in rows
        assert ((NP1, NP3, NP4), NP6, 13) in rows
        assert len(rows) == 4
