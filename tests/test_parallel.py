"""Sharded mining must be bit-identical to serial mining.

The contract under test (see ``src/repro/parallel/``): for *any*
contiguous shard plan and *any* worker count, the mined patterns — their
sets, supports, and order — and the saved artifact bytes are identical
to a serial run.  The determinism holds under fault injection too: a
seeded fault plan trips on the same (site, key) pairs whether the check
runs inline or inside a pool worker.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.namepath import NamePath, PathStep
from repro.core.namer import Namer, NamerConfig
from repro.core.patterns import PatternKind
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.mining.fptree import FPTree
from repro.mining.miner import MiningConfig, PatternMiner, generate_patterns
from repro.parallel.executor import ShardExecutor, default_workers
from repro.parallel.merge import (
    merge_count_pairs,
    merge_counters,
    merge_ordered_counts,
)
from repro.parallel.profiler import PhaseProfiler, format_phase_table
from repro.parallel.sharding import (
    even_spans,
    pack_spans,
    slice_spans,
    spans_by_group,
)
from repro.resilience.faults import (
    FAULTS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)

from .test_miner import idiom_corpus

SMALL = MiningConfig(min_pattern_support=10, min_path_frequency=5)


# ----------------------------------------------------------------------
# Shard plans
# ----------------------------------------------------------------------


class TestSharding:
    def test_even_spans_partition(self):
        spans = even_spans(10, 3)
        assert spans == [(0, 4), (4, 7), (7, 10)]

    def test_even_spans_more_shards_than_items(self):
        assert even_spans(2, 5) == [(0, 1), (1, 2)]
        assert even_spans(0, 4) == []

    def test_spans_by_group_collapses_runs(self):
        rows = [("a", 2), ("a", 3), ("b", 1), ("c", 0), ("c", 4)]
        assert spans_by_group(rows) == [(0, 5), (5, 6), (6, 10)]

    def test_spans_by_group_skips_empty_runs(self):
        assert spans_by_group([("a", 0), ("b", 2)]) == [(0, 2)]
        assert spans_by_group([]) == []

    def test_pack_spans_balances_without_splitting(self):
        spans = [(0, 4), (4, 8), (8, 10)]
        assert pack_spans(spans, 3) == [(0, 4), (4, 8), (8, 10)]
        assert pack_spans(spans, 2) == [(0, 8), (8, 10)]
        assert pack_spans(spans, 1) == [(0, 10)]

    def test_pack_spans_never_exceeds_span_count(self):
        spans = [(0, 9), (9, 10)]
        packed = pack_spans(spans, 5)
        assert packed == [(0, 9), (9, 10)]

    def test_pack_spans_covers_contiguously(self):
        spans = spans_by_group((str(i % 7), 1 + i % 3) for i in range(50))
        for shards in (1, 2, 3, 8):
            packed = pack_spans(spans, shards)
            assert packed[0][0] == spans[0][0]
            assert packed[-1][1] == spans[-1][1]
            for (_, stop), (start, _) in zip(packed, packed[1:]):
                assert stop == start

    def test_slice_spans(self):
        items = list(range(10))
        assert slice_spans(items, [(0, 3), (3, 10)]) == [
            [0, 1, 2],
            [3, 4, 5, 6, 7, 8, 9],
        ]


# ----------------------------------------------------------------------
# Mergeable summaries
# ----------------------------------------------------------------------


class TestMerge:
    def test_merge_counters_keeps_first_seen_order(self):
        merged = merge_counters([{"b": 1, "a": 2}, {"c": 1, "a": 3}])
        assert list(merged) == ["b", "a", "c"]
        assert merged["a"] == 5

    def test_merge_ordered_counts_matches_serial_first_occurrence(self):
        stream = ["x", "y", "x", "z", "y", "w"]
        shard1, shard2 = stream[:3], stream[3:]

        def count(items):
            out = {}
            for item in items:
                out[item] = out.get(item, 0) + 1
            return out

        merged = merge_ordered_counts([count(shard1), count(shard2)])
        assert merged == count(stream)
        assert list(merged) == list(count(stream))

    def test_merge_count_pairs(self):
        m, s = merge_count_pairs([({0: 2, 1: 1}, {0: 1}), ({1: 4}, {1: 2})])
        assert m == {0: 2, 1: 5}
        assert s == {0: 1, 1: 2}


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------


class TestProfiler:
    def test_phase_accumulates_same_name(self):
        ticks = iter(range(100))
        profiler = PhaseProfiler(clock=lambda: next(ticks))
        with profiler.phase("growth", items=5):
            pass
        with profiler.phase("growth", items=7):
            pass
        (row,) = profiler.rows()
        assert (row.phase, row.items, row.calls) == ("growth", 12, 2)
        assert row.seconds == 2.0

    def test_phase_records_on_exception(self):
        profiler = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with profiler.phase("prepare"):
                raise RuntimeError("boom")
        assert profiler.rows()[0].phase == "prepare"

    def test_json_roundtrip(self):
        profiler = PhaseProfiler()
        profiler.record("stats", 1.5, items=10)
        rows = profiler.to_json()
        restored = PhaseProfiler.from_json(rows)
        assert restored.to_json() == rows
        assert restored.seconds_for("stats") == 1.5

    def test_empty_profiler_is_truthy(self):
        # Guards the ``profiler or PhaseProfiler()`` idiom: an empty
        # profiler handed to the miner must be filled, not replaced.
        assert PhaseProfiler()

    def test_miner_fills_caller_profiler(self):
        profiler = PhaseProfiler()
        miner = PatternMiner(SMALL, confusing_pairs=[("True", "Equal")])
        miner.mine(idiom_corpus(20), PatternKind.CONFUSING_WORD, profiler=profiler)
        assert {row.phase for row in profiler.rows()} == {
            "frequency",
            "growth",
            "generate",
            "prune",
        }

    def test_format_phase_table(self):
        table = format_phase_table(
            [{"phase": "growth", "seconds": 1.0, "items": 3, "calls": 2}]
        )
        assert "growth" in table and "100.0%" in table
        assert format_phase_table([]) == ""


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------


def _square(x: int) -> int:
    return x * x


def _sum_shard(payload) -> int:
    from repro.parallel.executor import resolve_shard

    return sum(resolve_shard(payload))


class TestShardExecutor:
    def test_inline_when_single_worker(self):
        with ShardExecutor(1) as executor:
            assert not executor.parallel
            assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert executor._pool is None

    def test_pool_map_preserves_order(self):
        with ShardExecutor(2) as executor:
            assert executor.map(_square, list(range(20))) == [
                x * x for x in range(20)
            ]

    def test_shard_hint_bounds(self):
        executor = ShardExecutor(4)
        assert executor.shard_hint(100) == 8
        assert executor.shard_hint(3) == 3
        assert ShardExecutor(1).shard_hint(100) == 1

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_fork_unavailable_when_default_is_not_fork(self, monkeypatch):
        # An *unset* start method must resolve to the platform default,
        # not be assumed fork-capable (macOS defaults to spawn, Python
        # 3.14+ Linux to forkserver, with os.fork present on both).
        from repro.parallel import executor as ex

        monkeypatch.setattr(ex, "_resolved_start_method", lambda: "spawn")
        assert not ex._fork_available()
        monkeypatch.setattr(ex, "_resolved_start_method", lambda: "forkserver")
        assert not ex._fork_available()

    def test_non_fork_platform_ships_real_slices(self, monkeypatch):
        # With fork unavailable, shard_payloads must fall back to real
        # slices that pool workers can consume without inherited memory.
        from repro.parallel import executor as ex

        monkeypatch.setattr(ex, "_fork_available", lambda: False)
        with ShardExecutor(2) as executor:
            payloads = executor.shard_payloads(list(range(10)), [(0, 5), (5, 10)])
            assert payloads == [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]
            assert executor.map(_sum_shard, payloads) == [10, 35]

    def test_pool_pinned_to_fork_when_slices_shared(self):
        from repro.parallel import executor as ex
        from repro.parallel.executor import SharedSlice

        if not ex._fork_available():
            pytest.skip("fork start method unavailable on this platform")
        with ShardExecutor(2) as executor:
            payloads = executor.shard_payloads(list(range(6)), [(0, 3), (3, 6)])
            assert all(isinstance(p, SharedSlice) for p in payloads)
            assert executor.map(_sum_shard, payloads) == [3, 12]
            pool_method = executor._pool._mp_context.get_start_method()
            assert pool_method == "fork"


# ----------------------------------------------------------------------
# Cached NamePath hashes must not leak across processes
# ----------------------------------------------------------------------


class TestNamePathHashCache:
    def test_hash_cached_and_stable(self):
        p = NamePath(prefix=(PathStep("Call", 0),), end="size")
        assert hash(p) == hash(p)
        assert hash(p) == hash(NamePath(prefix=(PathStep("Call", 0),), end="size"))

    def test_pickle_strips_cached_hash(self):
        p = NamePath(prefix=(PathStep("Call", 0),), end="size")
        hash(p)  # populate the cache
        assert "_hash" in p.__dict__
        payload = pickle.dumps(p)
        assert b"_hash" not in payload
        restored = pickle.loads(payload)
        assert "_hash" not in restored.__dict__
        assert restored == p and hash(restored) == hash(p)


# ----------------------------------------------------------------------
# Bit-identity: sharded mining == serial mining
# ----------------------------------------------------------------------


def _fingerprint(result):
    return [
        (p.key(), p.support, p.kind) for p in result.patterns
    ], (
        result.total_statements,
        result.total_transactions,
        result.fp_tree_nodes,
        result.candidates_before_pruning,
    )


class TestShardedMiningEquivalence:
    @pytest.fixture(scope="class")
    def statements(self):
        return idiom_corpus(60)

    @pytest.fixture(scope="class")
    def miner(self):
        return PatternMiner(SMALL, confusing_pairs=[("True", "Equal")])

    @pytest.fixture(scope="class")
    def serial(self, miner, statements):
        return _fingerprint(
            miner.mine(statements, PatternKind.CONFUSING_WORD, workers=1)
        )

    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_shard_plan_invisible(self, miner, statements, serial, shards):
        spans = even_spans(len(statements), shards)
        with ShardExecutor(2) as executor:
            result = miner.mine(
                statements,
                PatternKind.CONFUSING_WORD,
                spans=spans,
                executor=executor,
            )
        assert _fingerprint(result) == serial
        assert serial[0], "equivalence is vacuous without patterns"

    def test_workers_invisible(self, miner, statements, serial):
        result = miner.mine(statements, PatternKind.CONFUSING_WORD, workers=2)
        assert _fingerprint(result) == serial

    def test_empty_statements(self, miner):
        result = miner.mine([], PatternKind.CONFUSING_WORD, workers=2)
        assert result.patterns == []
        assert result.total_statements == 0


class TestSpanValidation:
    """A malformed caller-supplied plan must error, never silently drop
    (gap) or double-count (overlap) statements — see miner._validate_spans."""

    @pytest.fixture(scope="class")
    def statements(self):
        return idiom_corpus(10)

    @pytest.fixture(scope="class")
    def miner(self):
        return PatternMiner(SMALL, confusing_pairs=[("True", "Equal")])

    def _mine(self, miner, statements, spans, workers=2):
        return miner.mine(
            statements, PatternKind.CONFUSING_WORD, spans=spans, workers=workers
        )

    def test_gap_rejected(self, miner, statements):
        n = len(statements)
        with pytest.raises(ValueError, match="contiguously partition"):
            self._mine(miner, statements, [(0, 3), (4, n)])

    def test_overlap_rejected(self, miner, statements):
        n = len(statements)
        with pytest.raises(ValueError, match="contiguously partition"):
            self._mine(miner, statements, [(0, 5), (4, n)])

    def test_nonzero_start_rejected(self, miner, statements):
        n = len(statements)
        with pytest.raises(ValueError, match="contiguously partition"):
            self._mine(miner, statements, [(1, n)])

    def test_short_coverage_rejected(self, miner, statements):
        n = len(statements)
        with pytest.raises(ValueError, match=f"there are {n}"):
            self._mine(miner, statements, [(0, n - 1)])

    def test_serial_mode_validates_too(self, miner, statements):
        n = len(statements)
        with pytest.raises(ValueError, match=f"there are {n}"):
            self._mine(miner, statements, [(0, n - 1)], workers=1)

    def test_exact_partition_accepted(self, miner, statements):
        n = len(statements)
        result = self._mine(miner, statements, [(0, 4), (4, 4), (4, n)])
        assert result.total_statements == n


# ----------------------------------------------------------------------
# Namer-level: byte-identical artifacts, identical quarantine
# ----------------------------------------------------------------------


def _mine_corpus():
    return generate_python_corpus(
        GeneratorConfig(num_repos=8, issue_rate=0.15, seed=31)
    )


class TestNamerParallelEquivalence:
    @pytest.fixture(scope="class")
    def corpus(self):
        return _mine_corpus()

    def _summary_key(self, summary):
        return {
            k: v for k, v in summary.__dict__.items() if k != "phase_timings"
        }

    def test_artifacts_byte_identical(self, corpus, tmp_path_factory):
        from repro.core.persistence import namer_to_document, save_document

        out = tmp_path_factory.mktemp("artifacts")
        namers = {}
        for workers in (1, 2):
            namer = Namer(NamerConfig(mining=SMALL, workers=workers))
            namer.mine(corpus)
            save_document(namer_to_document(namer), out / f"w{workers}.json")
            namers[workers] = namer
        assert (out / "w1.json").read_bytes() == (out / "w2.json").read_bytes()
        assert namers[1].matcher.patterns, "corpus mined no patterns"
        assert self._summary_key(namers[1].summary) == self._summary_key(
            namers[2].summary
        )

    def test_phase_timings_cover_pipeline(self, corpus):
        namer = Namer(NamerConfig(mining=SMALL, workers=2))
        summary = namer.mine(corpus)
        phases = [row["phase"] for row in summary.phase_timings]
        # prune_shard precedes prune: the worker-side seconds are
        # recorded inside the prune block, before its own row closes.
        assert phases == [
            "pairs",
            "prepare",
            "intern",
            "frequency",
            "growth",
            "generate",
            "prune_shard",
            "prune",
            "stats",
        ]
        # The four miner passes ran once per pattern kind.
        by_name = {row["phase"]: row for row in summary.phase_timings}
        assert by_name["frequency"]["calls"] == 2
        # The per-shard prune row reports real fanned-out shard tasks.
        assert by_name["prune_shard"]["items"] >= 2
        assert all(row["seconds"] >= 0.0 for row in summary.phase_timings)

    def test_quarantine_identical_under_faults(self, corpus):
        plan_spec = dict(site="corpus.prepare_file", rate=0.4)
        results = {}
        for workers in (1, 2):
            with FAULTS.armed(FaultPlan([FaultSpec(**plan_spec)], seed=3)):
                namer = Namer(NamerConfig(mining=SMALL, workers=workers))
                namer.mine(corpus)
            results[workers] = (
                [(r.path, r.stage) for r in namer.quarantine.records],
                [(p.key(), p.support) for p in namer.matcher.patterns],
            )
        assert results[1] == results[2]
        assert results[1][0], "fault plan tripped nothing — test is vacuous"

    def test_shard_fault_site_deterministic(self, corpus):
        plan = FaultPlan(
            [FaultSpec(site="mining.shard", match="consistency:0")], seed=1
        )
        for workers in (1, 2):
            with FAULTS.armed(plan):
                namer = Namer(NamerConfig(mining=SMALL, workers=workers))
                with pytest.raises(InjectedFault):
                    namer.mine(corpus)


# ----------------------------------------------------------------------
# Deep FP trees must not hit the recursion limit
# ----------------------------------------------------------------------


class TestDeepTree:
    def test_generate_patterns_on_deep_chain(self):
        depth = 3000
        chain = [
            NamePath(prefix=(PathStep("Call", i),), end="word")
            for i in range(depth)
        ]
        tree = FPTree()
        tree.update(chain)
        patterns = generate_patterns(
            tree.root,
            [],
            PatternKind.CONFUSING_WORD,
            max_condition_paths=3,
            condition_subsets="full",
        )
        assert len(patterns) == 1
        (pattern,) = patterns
        assert len(pattern.condition) == 3
        assert pattern.support == 1

    def test_visited_list_restored(self):
        chain = [
            NamePath(prefix=(PathStep("Call", i),), end="word") for i in range(5)
        ]
        tree = FPTree()
        tree.update(chain)
        visited = [NamePath(prefix=(PathStep("Outer", 0),), end="ctx")]
        before = list(visited)
        generate_patterns(tree.root, visited, PatternKind.CONFUSING_WORD)
        assert visited == before
