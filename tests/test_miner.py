"""Tests for the pattern miner (Algorithms 1 and 2)."""

from repro.core.namepath import extract_name_paths
from repro.core.patterns import PatternKind, Relation, check_pattern
from repro.core.transform import transform_statement
from repro.lang.python_frontend import parse_statement
from repro.mining.matcher import PatternMatcher
from repro.mining.miner import MiningConfig, PatternMiner


def prepared(source, origins=None):
    return transform_statement(parse_statement(source), origins)


def idiom_corpus(n=40):
    """Statements establishing the assertEqual idiom with varied args."""
    names = ["user", "record", "packet", "widget", "signal", "buffer"]
    attrs = ["size", "count", "level", "state"]
    stmts = []
    for i in range(n):
        noun, attr = names[i % len(names)], attrs[i % len(attrs)]
        stmts.append(
            prepared(
                f"self.assertEqual({noun}.{attr}, {i})", origins={"self": "TestCase"}
            )
        )
    return stmts


class TestConfusingWordMining:
    def setup_method(self):
        self.miner = PatternMiner(
            MiningConfig(min_pattern_support=10, min_path_frequency=5),
            confusing_pairs=[("True", "Equal")],
        )

    def test_mines_assert_pattern(self):
        result = self.miner.mine(idiom_corpus(), PatternKind.CONFUSING_WORD)
        assert result.patterns
        ends = {d.end for p in result.patterns for d in p.deduction}
        assert "Equal" in ends

    def test_mined_pattern_catches_bug(self):
        result = self.miner.mine(idiom_corpus(), PatternKind.CONFUSING_WORD)
        matcher = PatternMatcher(result.patterns)
        bug = prepared(
            "self.assertTrue(picture.rotate_angle, 90)", origins={"self": "TestCase"}
        )
        violations = matcher.violations(bug, extract_name_paths(bug, max_paths=10))
        assert violations
        assert violations[0].suggested == "Equal"

    def test_idiom_statements_satisfy(self):
        result = self.miner.mine(idiom_corpus(), PatternKind.CONFUSING_WORD)
        stmt = idiom_corpus(1)[0]
        paths = extract_name_paths(stmt, max_paths=10)
        relations = [check_pattern(p, paths) for p in result.patterns]
        assert Relation.VIOLATED not in relations

    def test_support_threshold_prunes(self):
        strict = PatternMiner(
            MiningConfig(min_pattern_support=10_000, min_path_frequency=5),
            confusing_pairs=[("True", "Equal")],
        )
        assert not strict.mine(idiom_corpus(), PatternKind.CONFUSING_WORD).patterns

    def test_no_pairs_no_patterns(self):
        empty = PatternMiner(
            MiningConfig(min_pattern_support=10, min_path_frequency=5),
            confusing_pairs=[],
        )
        assert not empty.mine(idiom_corpus(), PatternKind.CONFUSING_WORD).patterns

    def test_statistics_populated(self):
        result = self.miner.mine(idiom_corpus(), PatternKind.CONFUSING_WORD)
        assert result.total_statements == 40
        assert result.fp_tree_nodes > 0
        assert result.candidates_before_pruning >= len(result.patterns)


class TestConsistencyMining:
    def make_corpus(self):
        names = ["alpha", "beta", "gamma", "delta", "epsilon"]
        stmts = []
        for name in names * 8:
            stmts.append(
                prepared(f"self.{name} = {name}", origins={"self": "Object", name: "Str"})
            )
        return stmts

    def test_mines_example_3_8(self):
        miner = PatternMiner(MiningConfig(min_pattern_support=10, min_path_frequency=5))
        result = miner.mine(self.make_corpus(), PatternKind.CONSISTENCY)
        assert result.patterns
        pattern = result.patterns[0]
        assert pattern.kind is PatternKind.CONSISTENCY
        assert all(d.is_symbolic for d in pattern.deduction)

    def test_detects_inconsistency(self):
        miner = PatternMiner(MiningConfig(min_pattern_support=10, min_path_frequency=5))
        result = miner.mine(self.make_corpus(), PatternKind.CONSISTENCY)
        matcher = PatternMatcher(result.patterns)
        bad = prepared(
            "self.help = docstring", origins={"self": "Object", "docstring": "Str"}
        )
        violations = matcher.violations(bad, extract_name_paths(bad, max_paths=10))
        assert violations

    def test_satisfaction_ratio_pruning(self):
        """When violations dominate, pruneUncommon drops the pattern."""
        corpus = self.make_corpus()[:10]
        # add many inconsistent statements
        for i in range(30):
            corpus.append(
                prepared(
                    f"self.field{i} = other{i}",
                    origins={"self": "Object", f"other{i}": "Str"},
                )
            )
        miner = PatternMiner(MiningConfig(min_pattern_support=10, min_path_frequency=5))
        result = miner.mine(corpus, PatternKind.CONSISTENCY)
        matcher = PatternMatcher(result.patterns)
        bad = prepared(
            "self.help = docstring", origins={"self": "Object", "docstring": "Str"}
        )
        assert not matcher.violations(bad, extract_name_paths(bad, max_paths=10))


class TestRegularization:
    def test_max_paths_cap(self):
        config = MiningConfig(
            min_pattern_support=1, min_path_frequency=1, max_paths_per_statement=3
        )
        miner = PatternMiner(config, confusing_pairs=[("True", "Equal")])
        result = miner.mine(idiom_corpus(20), PatternKind.CONFUSING_WORD)
        for pattern in result.patterns:
            assert len(pattern.condition) <= 3

    def test_condition_subset_mode_full(self):
        config = MiningConfig(
            min_pattern_support=10, min_path_frequency=5, condition_subsets="full"
        )
        miner = PatternMiner(config, confusing_pairs=[("True", "Equal")])
        full = miner.mine(idiom_corpus(), PatternKind.CONFUSING_WORD)
        config_all = MiningConfig(
            min_pattern_support=10, min_path_frequency=5, condition_subsets="all"
        )
        miner_all = PatternMiner(config_all, confusing_pairs=[("True", "Equal")])
        subsets = miner_all.mine(idiom_corpus(), PatternKind.CONFUSING_WORD)
        assert len(subsets.patterns) >= len(full.patterns)

    def test_invalid_subset_mode(self):
        import pytest

        config = MiningConfig(
            min_pattern_support=1, min_path_frequency=1, condition_subsets="bogus"
        )
        miner = PatternMiner(config, confusing_pairs=[("True", "Equal")])
        with pytest.raises(ValueError):
            miner.mine(idiom_corpus(5), PatternKind.CONFUSING_WORD)
