"""Tests for the k-call-site-sensitive Andersen points-to analysis."""

from repro.analysis.facts import extract_facts
from repro.analysis.pointsto import PointsToConfig, analyze_pointsto
from repro.lang.python_frontend import parse_module


def run(source, **kwargs):
    facts = extract_facts(parse_module(source))
    return analyze_pointsto(facts, PointsToConfig(**kwargs)), facts


class TestBasics:
    def test_direct_alloc(self):
        result, facts = run("class C:\n    pass\nx = C()")
        heaps = result.heaps_of("<module>", "x")
        assert heaps and all(facts.heap_origin[h] == "C" for h in heaps)

    def test_move_propagates(self):
        result, facts = run("class C:\n    pass\nx = C()\ny = x")
        assert result.heaps_of("<module>", "y") == result.heaps_of("<module>", "x")

    def test_interprocedural_return(self):
        src = (
            "class C:\n    pass\n"
            "def make():\n    c = C()\n    return c\n"
            "def use():\n    obj = make()\n"
        )
        result, facts = run(src)
        heaps = result.heaps_of("use", "obj")
        assert heaps and all(facts.heap_origin[h] == "C" for h in heaps)

    def test_param_passing(self):
        src = (
            "class C:\n    pass\n"
            "def consume(item):\n    return item\n"
            "def go():\n    c = C()\n    consume(c)\n"
        )
        result, facts = run(src)
        heaps = result.heaps_of("consume", "item")
        assert heaps and all(facts.heap_origin[h] == "C" for h in heaps)

    def test_field_store_load(self):
        src = (
            "class Box:\n    pass\n"
            "class C:\n    pass\n"
            "def go():\n"
            "    box = Box()\n"
            "    c = C()\n"
            "    box.item = c\n"
            "    out = box.item\n"
        )
        result, facts = run(src)
        heaps = result.heaps_of("go", "out")
        assert heaps and all(facts.heap_origin[h] == "C" for h in heaps)

    def test_two_call_chain(self):
        src = (
            "class C:\n    pass\n"
            "def inner():\n    return C()\n"
            "def outer():\n    return inner()\n"
            "def top():\n    x = outer()\n"
        )
        result, facts = run(src)
        heaps = result.heaps_of("top", "x")
        assert heaps and all(facts.heap_origin[h] == "C" for h in heaps)


class TestContexts:
    def test_reachability(self):
        src = "def pub():\n    helper()\ndef helper():\n    pass"
        result, _ = run(src)
        assert "helper" in result.reachable_functions

    def test_k_zero_still_sound_enough(self):
        src = (
            "class C:\n    pass\n"
            "def make():\n    return C()\n"
            "def use():\n    x = make()\n"
        )
        result, facts = run(src, k=0)
        assert result.heaps_of("use", "x")

    def test_used_k_recorded(self):
        result, _ = run("x = 1", k=3)
        assert result.used_k == 3

    def test_explosion_fallback(self):
        """A call chain fan-out with a tiny context budget falls back."""
        lines = ["class C:", "    pass"]
        for i in range(6):
            lines.append(f"def f{i}():")
            lines.append(f"    return C()" if i == 0 else f"    return f{i-1}()")
        # many callers of the chain from distinct sites
        for i in range(8):
            lines.append(f"def top{i}():")
            lines.append("    x = f5()")
        result, _ = run("\n".join(lines), k=5, max_avg_contexts=1.0)
        assert result.used_k == 0

    def test_call_edges(self):
        src = "def pub():\n    helper()\ndef helper():\n    pass"
        result, _ = run(src)
        assert any(callee == "helper" for _, _, callee in result.call_edges)
