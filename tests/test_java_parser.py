"""Tests for the Java parser and frontend."""

import pytest

from repro.lang.java.frontend import JavaFrontendError, parse_java


def statements_of(source):
    return parse_java(source).statements


def wrap(body: str) -> str:
    return f"public class T {{\n    public void m() {{\n{body}\n    }}\n}}"


class TestDeclarations:
    def test_class_with_extends_implements(self):
        module = parse_java(
            "public class A extends B implements C, D { }"
        )
        header = module.statements[0].root
        assert header.kind == "ClassDecl"
        bases = next(c for c in header.children if c.kind == "Bases")
        names = [b.children[0].value for b in bases.children]
        assert names == ["B", "C", "D"]

    def test_interface(self):
        module = parse_java("interface I { void m(); }")
        kinds = [s.root.kind for s in module.statements]
        assert kinds == ["ClassDecl", "MethodDecl"]

    def test_enum_constants_skipped(self):
        module = parse_java("enum E { A, B, C; public void m() { } }")
        assert [s.root.kind for s in module.statements] == ["ClassDecl", "MethodDecl"]

    def test_constructor_named_init(self):
        module = parse_java("class A { A(int x) { this.x = x; } }")
        method = module.statements[1].root
        assert method.kind == "MethodDecl"
        assert method.children[0].children[0].value == "__init__"

    def test_field_with_initializer(self):
        module = parse_java("class A { private int count = 0; }")
        decl = module.statements[1].root
        assert decl.kind == "FieldDecl"
        assert decl.children[0].children[0].value == "int"

    def test_generic_method_signature(self):
        module = parse_java(
            "class A { public List<Map<String, Integer>> get() { return null; } }"
        )
        assert any(s.root.kind == "MethodDecl" for s in module.statements)

    def test_varargs_params(self):
        module = parse_java("class A { void m(String... parts) { } }")
        method = module.statements[1].root
        params = next(c for c in method.children if c.kind == "Params")
        assert len(params.children) == 1

    def test_throws_clause(self):
        module = parse_java("class A { void m() throws IOException { } }")
        method = module.statements[1].root
        assert any(c.kind == "Throws" for c in method.children)

    def test_annotations_skipped(self):
        module = parse_java('@Override @SuppressWarnings("x") class A { }')
        assert module.statements[0].root.kind == "ClassDecl"

    def test_package_and_imports(self):
        module = parse_java("package a.b;\nimport java.util.List;\nclass A { }")
        assert module.statements[0].root.kind == "ImportFrom"


class TestStatements:
    def test_local_var_decl(self):
        stmts = statements_of(wrap("        int total = 0;"))
        decl = next(s.root for s in stmts if s.root.kind == "VarDecl")
        assert decl.children[0].children[0].value == "int"
        assert decl.children[1].meta["decl_type"] == "int"

    def test_multi_declarator(self):
        stmts = statements_of(wrap("        int a = 1, b = 2;"))
        assert sum(1 for s in stmts if s.root.kind == "VarDecl") == 2

    def test_assignment(self):
        stmts = statements_of(wrap("        this.name = name;"))
        assign = next(s.root for s in stmts if s.root.kind == "Assign")
        assert assign.children[0].kind == "AttributeStore"

    def test_classic_for(self):
        stmts = statements_of(wrap("        for (int i = 0; i < n; i++) { use(i); }"))
        header = next(s.root for s in stmts if s.root.kind == "For")
        assert [c.kind for c in header.children[:3]] == [
            "ForInit", "ForCond", "ForUpdate",
        ]

    def test_enhanced_for(self):
        stmts = statements_of(wrap("        for (String s : items) { use(s); }"))
        header = next(s.root for s in stmts if s.root.kind == "ForEach")
        assert header.children[0].children[0].value == "String"

    def test_if_else(self):
        stmts = statements_of(wrap("        if (a > b) { f(); } else { g(); }"))
        assert any(s.root.kind == "If" for s in stmts)

    def test_while_and_do(self):
        stmts = statements_of(wrap("        while (x) { f(); } do { g(); } while (y);"))
        kinds = {s.root.kind for s in stmts}
        assert "While" in kinds and "DoWhile" in kinds

    def test_try_catch_finally(self):
        body = (
            "        try { f(); } catch (IOException e) { g(); }"
            " finally { h(); }"
        )
        stmts = statements_of(wrap(body))
        catch = next(s.root for s in stmts if s.root.kind == "Catch")
        assert catch.children[0].children[0].value == "IOException"
        assert catch.children[1].meta["decl_type"] == "IOException"

    def test_multicatch_keeps_first_type(self):
        stmts = statements_of(
            wrap("        try { f(); } catch (IOException | SQLException e) { }")
        )
        catch = next(s.root for s in stmts if s.root.kind == "Catch")
        assert catch.children[0].children[0].value == "IOException"

    def test_try_with_resources(self):
        stmts = statements_of(
            wrap('        try (Reader r = open("f")) { use(r); }')
        )
        assert any(s.root.kind == "Call" for s in stmts)

    def test_switch(self):
        body = (
            "        switch (x) { case 1: f(); break; default: g(); }"
        )
        stmts = statements_of(wrap(body))
        assert any(s.root.kind == "Switch" for s in stmts)

    def test_return_and_throw(self):
        stmts = statements_of(wrap("        if (x) { return 1; } throw new Error();"))
        kinds = {s.root.kind for s in stmts}
        assert "Return" in kinds and "Raise" in kinds

    def test_synchronized(self):
        stmts = statements_of(wrap("        synchronized (lock) { f(); }"))
        assert any(s.root.kind == "Call" for s in stmts)

    def test_assert_statement(self):
        stmts = statements_of(wrap('        assert x > 0 : "bad";'))
        assert any(s.root.kind == "Assert" for s in stmts)


class TestExpressions:
    def test_method_call_structure(self):
        stmts = statements_of(wrap("        context.startActivity(intent);"))
        call = next(s.root for s in stmts if s.root.kind == "Call")
        assert call.children[0].kind == "AttributeLoad"
        assert call.children[1].kind == "NameLoad"

    def test_chained_calls(self):
        stmts = statements_of(wrap("        a.b().c().d();"))
        assert any(s.root.kind == "Call" for s in stmts)

    def test_new_object(self):
        stmts = statements_of(wrap("        Intent i = new Intent(context, X.class);"))
        decl = next(s.root for s in stmts if s.root.kind == "VarDecl")
        new = decl.children[2]
        assert new.kind == "New"
        assert new.children[0].children[0].value == "Intent"

    def test_new_array(self):
        stmts = statements_of(wrap("        int[] xs = new int[10];"))
        assert any(s.root.kind == "VarDecl" for s in stmts)

    def test_cast(self):
        stmts = statements_of(wrap("        double r = (double) count / 4;"))
        decl = next(s.root for s in stmts if s.root.kind == "VarDecl")
        assert any(n.kind == "Cast" for n in decl.walk())

    def test_ternary(self):
        stmts = statements_of(wrap('        String m = f ? "y" : "n";'))
        decl = next(s.root for s in stmts if s.root.kind == "VarDecl")
        assert any(n.kind == "IfExp" for n in decl.walk())

    def test_instanceof(self):
        stmts = statements_of(wrap("        boolean b = x instanceof String;"))
        decl = next(s.root for s in stmts if s.root.kind == "VarDecl")
        assert any(n.kind == "InstanceOf" for n in decl.walk())

    def test_lambda_single_param(self):
        stmts = statements_of(wrap("        items.forEach(x -> x.close());"))
        assert any(
            n.kind == "Lambda" for s in stmts for n in s.root.walk()
        )

    def test_lambda_parenthesized_params(self):
        stmts = statements_of(wrap("        map.forEach((k, v) -> use(k, v));"))
        assert any(n.kind == "Lambda" for s in stmts for n in s.root.walk())

    def test_method_reference(self):
        stmts = statements_of(wrap("        items.forEach(System.out::println);"))
        assert any(n.kind == "MethodRef" for s in stmts for n in s.root.walk())

    def test_array_access(self):
        stmts = statements_of(wrap("        int x = xs[0];"))
        decl = next(s.root for s in stmts if s.root.kind == "VarDecl")
        assert any(n.kind == "SubscriptLoad" for n in decl.walk())

    def test_string_concat(self):
        stmts = statements_of(wrap('        String s = "a" + name + 1;'))
        assert any(s.root.kind == "VarDecl" for s in stmts)

    def test_increment(self):
        stmts = statements_of(wrap("        count++;"))
        assert any(s.root.kind == "PostIncDec" for s in stmts)

    def test_literals(self):
        stmts = statements_of(
            wrap("        Object o = true ? null : 'c';")
        )
        assert stmts


class TestErrors:
    def test_unbalanced_brace(self):
        with pytest.raises(JavaFrontendError):
            parse_java("class A { void m() {")

    def test_garbage(self):
        with pytest.raises(JavaFrontendError):
            parse_java("not a java file at all ###")

    def test_roles(self):
        module = parse_java(wrap("        context.startActivity(intent);"))
        call = next(s.root for s in module.statements if s.root.kind == "Call")
        callee_ident = call.children[0].children[1].children[0]
        assert callee_ident.meta["role"] == "func"
