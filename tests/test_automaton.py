"""Differential suite: compiled automaton vs legacy matcher.

The compiled :class:`MatchAutomaton` replaces per-candidate
``check_pattern`` with integer-domain checks against one shared trie.
Nothing about its *output* may differ from the legacy path —
candidates, relations, violations, report bytes, quarantine records,
prune counts, enumeration order — for any pattern subset, worker
count, or cache temperature.  ``PatternMatcher(use_automaton=False)``
keeps the legacy path alive precisely so these tests can hold the two
against each other byte for byte.
"""

from __future__ import annotations

import json
import pickle
import random
from collections import Counter

import pytest

from repro.core.namer import Namer, NamerConfig
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.mining.automaton import AUTOMATON_SCHEMA, MatchAutomaton
from repro.mining.matcher import PatternMatcher, prefix_frequencies
from repro.mining.miner import MiningConfig, _count_matches, _count_matches_with
from repro.parallel.executor import (
    ShardExecutor,
    SharedContext,
    resolve_context,
)
from repro.resilience.faults import FAULTS, FaultPlan, FaultSpec
from repro.resilience.quarantine import Quarantine


@pytest.fixture(scope="module")
def trained_namer():
    corpus = generate_python_corpus(
        GeneratorConfig(num_repos=8, issue_rate=0.15, seed=31)
    )
    namer = Namer(
        NamerConfig(
            mining=MiningConfig(min_pattern_support=8, min_path_frequency=4)
        )
    )
    namer.mine(corpus)
    violations = namer.all_violations()[:40]
    namer.train(violations, [i % 2 for i in range(len(violations))])
    return namer


@pytest.fixture(scope="module")
def statements(trained_namer):
    """(stmt, paths) pairs across the whole prepared corpus."""
    return [
        (ps.stmt, ps.paths)
        for pf in trained_namer.prepared
        for ps in pf.statements
    ]


def legacy_twin(matcher: PatternMatcher) -> PatternMatcher:
    """The legacy-path matcher over the same patterns and rarity table."""
    return PatternMatcher(
        matcher.patterns,
        prefix_counts=matcher._corpus_counts,
        use_automaton=False,
    )


def report_blob(groups) -> str:
    return json.dumps(
        [[r.to_json() for r in g] for g in groups], sort_keys=True
    )


class TestDifferentialRelations:
    """relations()/violations() parity, statement by statement."""

    def test_full_pattern_set(self, trained_namer, statements):
        auto = trained_namer.matcher
        assert auto._automaton is not None
        legacy = legacy_twin(auto)
        assert legacy._automaton is None
        matched = 0
        for stmt, paths in statements:
            rel_a = auto.relations(paths)
            rel_l = legacy.relations(paths)
            assert rel_a == rel_l
            matched += len(rel_a)
            assert auto.violations(stmt, paths) == legacy.violations(
                stmt, paths
            )
        assert matched, "corpus must exercise the matchers"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_pattern_subsets(self, trained_namer, statements, seed):
        patterns = trained_namer.matcher.patterns
        rng = random.Random(seed)
        subset = rng.sample(patterns, max(1, len(patterns) // 3))
        auto = PatternMatcher(subset)
        legacy = PatternMatcher(subset, use_automaton=False)
        for stmt, paths in statements:
            assert auto.relations(paths) == legacy.relations(paths)
            assert auto.violations(stmt, paths) == legacy.violations(
                stmt, paths
            )

    def test_empty_pattern_set(self, statements):
        auto = PatternMatcher([])
        legacy = PatternMatcher([], use_automaton=False)
        for stmt, paths in statements[:50]:
            assert auto.relations(paths) == []
            assert auto.violations(stmt, paths) == []
            assert legacy.relations(paths) == []

    def test_single_pattern_set(self, trained_namer, statements):
        for pattern in trained_namer.matcher.patterns[:5]:
            auto = PatternMatcher([pattern])
            legacy = PatternMatcher([pattern], use_automaton=False)
            for stmt, paths in statements:
                assert auto.relations(paths) == legacy.relations(paths)

    def test_duplicate_prefix_statement_paths(self, trained_namer, statements):
        """A statement carrying the same prefix twice orders candidates
        at the first occurrence but resolves lookups at the last — both
        backends, identically."""
        auto = trained_namer.matcher
        legacy = legacy_twin(auto)
        checked = 0
        for stmt, paths in statements:
            if len(paths) < 2:
                continue
            doctored = list(paths) + [paths[0], paths[-1]]
            assert auto.relations(doctored) == legacy.relations(doctored)
            assert auto.violations(stmt, doctored) == legacy.violations(
                stmt, doctored
            )
            checked += 1
            if checked >= 40:
                break
        assert checked, "need statements with at least two paths"

    def test_shared_anchor_buckets_exist(self, trained_namer):
        """The mined set must actually exercise shared accept sets —
        several patterns anchored at one trie node — or the ordering
        assertions above prove less than they claim."""
        automaton = trained_namer.matcher._automaton
        assert any(len(b) > 1 for b in automaton._accepts.values())

    def test_rescan_is_stateless(self, trained_namer, statements):
        """Generation-stamped scratch arrays must not leak one scan's
        state into the next (same or different statement)."""
        auto = trained_namer.matcher
        sample = statements[:60]
        first = [auto.relations(paths) for _, paths in sample]
        second = [auto.relations(paths) for _, paths in reversed(sample)]
        assert first == list(reversed(second))


class TestDifferentialReports:
    """End-to-end detect_many parity, serial and parallel."""

    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_byte_identical_reports(self, trained_namer, workers):
        namer = trained_namer
        auto = namer.matcher
        legacy = legacy_twin(auto)
        try:
            namer.matcher = legacy
            expected = report_blob(namer.detect_many(namer.prepared))
        finally:
            namer.matcher = auto
        got = report_blob(namer.detect_many(namer.prepared, workers=workers))
        assert got == expected

    def test_repeat_scan_replay_identical(self, trained_namer):
        """Two detect passes over the same namer (warm scan arrays,
        bumped generations) must be byte-identical."""
        namer = trained_namer
        first = report_blob(namer.detect_many(namer.prepared))
        second = report_blob(namer.detect_many(namer.prepared))
        assert second == first

    @pytest.mark.parametrize("workers", [1, 2])
    def test_quarantine_parity_under_faults(self, trained_namer, workers):
        plan = FaultPlan(
            [
                FaultSpec(site="core.detect", rate=0.4),
                FaultSpec(site="core.featurize", rate=0.3),
            ],
            seed=5,
        )
        namer = trained_namer
        auto = namer.matcher

        def run():
            with FAULTS.armed(plan):
                quarantine = Quarantine()
                groups = namer.detect_many(
                    namer.prepared, quarantine=quarantine, workers=workers
                )
            return report_blob(groups), [
                (r.path, r.stage, r.kind, r.repo) for r in quarantine.records
            ]

        try:
            namer.matcher = legacy_twin(auto)
            expected_blob, expected_records = run()
        finally:
            namer.matcher = auto
        got_blob, got_records = run()
        assert expected_records, "plan must actually trip to prove parity"
        assert got_records == expected_records
        assert got_blob == expected_blob


class TestPruneParity:
    """The miner's prune counts through the shared automaton matcher."""

    def test_count_matches_backend_parity(self, trained_namer, statements):
        patterns = trained_namer.matcher.patterns
        path_lists = [paths for _, paths in statements]
        auto_counts = _count_matches(path_lists, patterns)
        legacy = PatternMatcher(
            patterns,
            prefix_counts=prefix_frequencies(path_lists),
            use_automaton=False,
        )
        assert _count_matches_with(legacy, path_lists) == auto_counts

    def test_counts_anchor_independent(self, trained_namer, statements):
        """Corpus-rarity anchors and fallback anchors must count
        identically — the invariant that lets one shared matcher serve
        every shard layout and the cache."""
        patterns = trained_namer.matcher.patterns
        path_lists = [paths for _, paths in statements]
        with_corpus = _count_matches(path_lists, patterns)
        fallback_matcher = PatternMatcher(patterns)  # pattern-set rarity
        assert _count_matches_with(fallback_matcher, path_lists) == with_corpus

    def test_mined_artifacts_identical_across_backends(self):
        """mine() itself (stats index included) produces byte-identical
        artifacts whether matchers compile the automaton or not."""
        from repro.core.persistence import namer_to_document

        corpus = generate_python_corpus(
            GeneratorConfig(num_repos=4, issue_rate=0.15, seed=9)
        )
        config = NamerConfig(
            mining=MiningConfig(min_pattern_support=6, min_path_frequency=4)
        )
        namer = Namer(config)
        namer.mine(corpus)
        doc = namer_to_document(namer)
        legacy_namer = Namer(config)
        import repro.mining.matcher as matcher_mod
        import repro.mining.miner as miner_mod

        original = matcher_mod.PatternMatcher.__init__
        miner_original = miner_mod.PatternMiner.__init__

        def forced_legacy(
            self, patterns, prefix_counts=None, use_automaton=True, **kwargs
        ):
            original(self, patterns, prefix_counts, use_automaton=False)

        def forced_object_miner(self, *args, **kwargs):
            # An automaton-less matcher has no ID scan, so the miner
            # must take the object-path pipeline alongside it.
            kwargs["use_interner"] = False
            miner_original(self, *args, **kwargs)

        matcher_mod.PatternMatcher.__init__ = forced_legacy
        miner_mod.PatternMiner.__init__ = forced_object_miner
        try:
            legacy_namer.mine(corpus)
        finally:
            matcher_mod.PatternMatcher.__init__ = original
            miner_mod.PatternMiner.__init__ = miner_original
        legacy_doc = namer_to_document(legacy_namer)
        doc.pop("phase_timings", None)
        legacy_doc.pop("phase_timings", None)
        assert json.dumps(doc, sort_keys=True) == json.dumps(
            legacy_doc, sort_keys=True
        )


class TestFallbackFrequencies:
    """The artifact-load fallback rarity table is read off the trie."""

    def test_fallback_counts_match_recounting(self, trained_namer):
        patterns = trained_namer.matcher.patterns
        expected = Counter(
            d.prefix for p in patterns for d in p.deduction
        )
        matcher = PatternMatcher(patterns)  # no corpus table: fallback
        assert matcher.prefix_counts == expected
        # First-seen key order is part of the merge/serialization
        # contract, not just the values.
        assert list(matcher.prefix_counts) == list(expected)
        automaton = matcher._automaton
        assert automaton is not None
        assert automaton.deduction_prefix_counts() == expected

    def test_artifact_load_builds_automaton(self, trained_namer, tmp_path):
        from repro.core.persistence import (
            load_namer,
            namer_to_document,
            save_document,
        )

        artifact = tmp_path / "namer.json"
        save_document(namer_to_document(trained_namer), str(artifact))
        loaded = load_namer(str(artifact))
        assert loaded.matcher._automaton is not None
        expected = Counter(
            d.prefix
            for p in loaded.matcher.patterns
            for d in p.deduction
        )
        assert loaded.matcher.prefix_counts == expected
        assert list(loaded.matcher.prefix_counts) == list(expected)


class TestMergeAndPickle:
    def test_merge_parity_with_flat_build(self, trained_namer, statements):
        patterns = trained_namer.matcher.patterns
        third = max(1, len(patterns) // 3)
        parts = [
            PatternMatcher(patterns[:third]),
            PatternMatcher(patterns[third : 2 * third]),
            PatternMatcher(patterns[2 * third :]),
        ]
        merged = PatternMatcher.merge(parts)
        assert merged._automaton is not None
        flat = PatternMatcher(patterns)
        assert merged.prefix_counts == flat.prefix_counts
        assert list(merged.prefix_counts) == list(flat.prefix_counts)
        for _, paths in statements[:100]:
            assert merged.relations(paths) == flat.relations(paths)

    def test_merge_with_legacy_part_stays_legacy(self, trained_namer):
        patterns = trained_namer.matcher.patterns
        parts = [
            PatternMatcher(patterns[:2]),
            PatternMatcher(patterns[2:4], use_automaton=False),
        ]
        merged = PatternMatcher.merge(parts)
        assert merged._automaton is None

    def test_pickle_roundtrip(self, trained_namer, statements):
        """A matcher that has already scanned must pickle without its
        scratch state and match identically on the other side — the
        spawn-platform shipping path."""
        auto = trained_namer.matcher
        sample = statements[:50]
        for _, paths in sample[:5]:
            auto.relations(paths)  # populate scan scratch
        blob = pickle.dumps(auto)
        automaton_state = pickle.loads(
            pickle.dumps(auto._automaton)
        ).__dict__
        assert "_stamp" not in automaton_state
        loaded = pickle.loads(blob)
        for stmt, paths in sample:
            assert loaded.relations(paths) == auto.relations(paths)
            assert loaded.violations(stmt, paths) == auto.violations(
                stmt, paths
            )

    def test_unfinalized_automaton_refuses_to_scan(self, trained_namer):
        automaton = MatchAutomaton(trained_namer.matcher.patterns[:2])
        with pytest.raises(RuntimeError, match="finalize"):
            automaton.relations([])

    def test_schema_constant_is_int(self):
        assert isinstance(AUTOMATON_SCHEMA, int)


class TestSharedContext:
    """share_context ships the matcher once per pool, not per task."""

    def test_handle_before_pool_raw_after(self):
        value = {"model": 1}
        with ShardExecutor(2) as executor:
            handle = executor.share_context(value)
            assert isinstance(handle, SharedContext)
            assert resolve_context(handle) is value
            # Re-sharing the same object reuses the registration.
            assert executor.share_context(value) == handle
            executor.warm()
            late = executor.share_context({"model": 2})
            assert not isinstance(late, SharedContext)
            assert resolve_context(late) == {"model": 2}

    def test_serial_executor_ships_raw(self):
        with ShardExecutor(1) as executor:
            value = object()
            assert executor.share_context(value) is value

    def test_close_unregisters(self):
        from repro.parallel.executor import _SHARED

        executor = ShardExecutor(2)
        handle = executor.share_context(["ctx"])
        assert handle.key in _SHARED
        executor.close()
        assert handle.key not in _SHARED

    def test_workers_resolve_shared_context(self, trained_namer):
        """End to end: a pool created after share_context serves tasks
        that carry only the handle."""
        namer = trained_namer
        expected = report_blob(namer.detect_many(namer.prepared[:6]))
        with ShardExecutor(2) as executor:
            namer.warm_detect(executor)
            got = report_blob(
                namer.detect_many(namer.prepared[:6], executor=executor)
            )
        assert got == expected
