"""Tests for the Datalog engine."""

import pytest

from repro.datalog.engine import Program, StratificationError
from repro.datalog.terms import Atom, Bind, Filter, Negation, Rule, Var, atom, var


class TestTerms:
    def test_atom_constructor_variables(self):
        a = atom("edge", "?X", "node1")
        assert a.args[0] == Var("X")
        assert a.args[1] == "node1"

    def test_rule_validates_head_variables(self):
        with pytest.raises(ValueError):
            Rule(head=atom("p", "?X"), body=(atom("q", "?Y"),))

    def test_fact_rule_allows_constants(self):
        Rule(head=atom("p", 1, 2))  # no body, no variables: fine

    def test_bind_binds_head_variable(self):
        Rule(
            head=atom("p", "?Y"),
            body=(atom("q", "?X"), Bind(Var("Y"), lambda x: x + 1, (Var("X"),))),
        )


class TestEvaluation:
    def test_transitive_closure(self):
        p = Program()
        for a, b in [("a", "b"), ("b", "c"), ("c", "d")]:
            p.fact("edge", a, b)
        p.rule(atom("path", "?X", "?Y"), atom("edge", "?X", "?Y"))
        p.rule(atom("path", "?X", "?Z"), atom("path", "?X", "?Y"), atom("edge", "?Y", "?Z"))
        db = p.solve()
        assert ("a", "d") in db["path"]
        assert len(db["path"]) == 6

    def test_cycle_terminates(self):
        p = Program()
        p.fact("edge", "a", "b")
        p.fact("edge", "b", "a")
        p.rule(atom("path", "?X", "?Y"), atom("edge", "?X", "?Y"))
        p.rule(atom("path", "?X", "?Z"), atom("path", "?X", "?Y"), atom("edge", "?Y", "?Z"))
        db = p.solve()
        assert ("a", "a") in db["path"]

    def test_join_on_shared_variable(self):
        p = Program()
        p.fact("parent", "tom", "bob")
        p.fact("parent", "bob", "ann")
        p.rule(
            atom("grandparent", "?X", "?Z"),
            atom("parent", "?X", "?Y"),
            atom("parent", "?Y", "?Z"),
        )
        assert p.solve()["grandparent"] == {("tom", "ann")}

    def test_constants_in_body(self):
        p = Program()
        p.fact("edge", "a", "b")
        p.fact("edge", "c", "b")
        p.rule(atom("to_b", "?X"), atom("edge", "?X", "b"))
        assert p.solve()["to_b"] == {("a",), ("c",)}

    def test_query(self):
        p = Program()
        p.fact("edge", "a", "b")
        p.rule(atom("path", "?X", "?Y"), atom("edge", "?X", "?Y"))
        results = p.query(atom("path", "a", "?Y"))
        assert results[0][Var("Y")] == "b"

    def test_empty_program(self):
        assert Program().solve() == {}


class TestNegation:
    def test_stratified_negation(self):
        p = Program()
        p.fact("node", "a")
        p.fact("node", "b")
        p.fact("edge", "a", "b")
        p.rules.append(
            Rule(
                head=atom("sink", "?X"),
                body=(atom("node", "?X"), Negation(atom("edge", "?X", "?Y"))),
            )
        )
        assert p.solve()["sink"] == {("b",)}

    def test_negative_cycle_rejected(self):
        p = Program()
        p.fact("n", "a")
        p.rules.append(
            Rule(head=atom("p", "?X"), body=(atom("n", "?X"), Negation(atom("q", "?X"))))
        )
        p.rules.append(
            Rule(head=atom("q", "?X"), body=(atom("n", "?X"), Negation(atom("p", "?X"))))
        )
        with pytest.raises(StratificationError):
            p.solve()

    def test_negation_sees_complete_relation(self):
        p = Program()
        p.fact("base", "a")
        p.fact("base", "b")
        p.rule(atom("derived", "a"), atom("base", "a"))
        p.rules.append(
            Rule(
                head=atom("missing", "?X"),
                body=(atom("base", "?X"), Negation(atom("derived", "?X"))),
            )
        )
        assert p.solve()["missing"] == {("b",)}


class TestBuiltins:
    def test_bind_computes(self):
        p = Program()
        p.fact("n", 1)
        p.fact("n", 2)
        p.rule(
            atom("double", "?Y"),
            atom("n", "?X"),
            Bind(Var("Y"), lambda x: x * 2, (Var("X"),)),
        )
        assert p.solve()["double"] == {(2,), (4,)}

    def test_bind_truncating_context(self):
        p = Program()
        p.fact("start", ())
        p.fact("site", "s1")
        p.fact("site", "s2")
        push = lambda ctx, s: ((s,) + ctx)[:2]
        p.rule(
            atom("ctx", "?C2"),
            atom("start", "?C"),
            atom("site", "?S"),
            Bind(Var("C2"), push, (Var("C"), Var("S"))),
        )
        p.rule(
            atom("ctx", "?C2"),
            atom("ctx", "?C"),
            atom("site", "?S"),
            Bind(Var("C2"), push, (Var("C"), Var("S"))),
        )
        contexts = {c for (c,) in p.solve()["ctx"]}
        assert all(len(c) <= 2 for c in contexts)
        assert ("s1", "s2") in contexts

    def test_filter(self):
        p = Program()
        for i in range(5):
            p.fact("n", i)
        p.rule(atom("big", "?X"), atom("n", "?X"), Filter(lambda x: x >= 3, (Var("X"),)))
        assert p.solve()["big"] == {(3,), (4,)}

    def test_bind_conflict_prunes(self):
        p = Program()
        p.fact("pair", 1, 2)
        p.rule(
            atom("same", "?X", "?Y"),
            atom("pair", "?X", "?Y"),
            Bind(Var("Y"), lambda x: x, (Var("X"),)),
        )
        assert "same" not in p.solve() or not p.solve()["same"]
