"""Test for the one-command evaluation report."""

import pytest

from repro.evaluation.full_report import ReportOptions, build_full_report


@pytest.fixture(scope="module")
def document():
    return build_full_report(
        ReportOptions(
            num_repos=10,
            sample_size=60,
            training_size=30,
            include_dl=False,
            min_pattern_support=10,
            min_path_frequency=5,
        )
    )


class TestFullReport:
    def test_contains_all_sections(self, document):
        for heading in (
            "Precision and ablations",
            "Mining statistics",
            "Per-pattern-type breakdown",
            "model selection",
            "Feature weights",
            "User study",
            "Analysis speed",
        ):
            assert heading in document

    def test_dl_section_skipped(self, document):
        assert "Deep-learning comparison" not in document

    def test_rows_present(self, document):
        assert "Namer" in document and "w/o C & A" in document

    def test_is_markdown(self, document):
        assert document.startswith("# Namer evaluation report")
        assert "```" in document
