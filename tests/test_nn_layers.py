"""Tests for layers and the Adam optimizer."""

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.layers import (
    Embedding,
    GRUCell,
    LayerNorm,
    Linear,
    Module,
    RelationalAttention,
)
from repro.nn.optim import Adam

rng = np.random.default_rng(7)


class TestLinear:
    def test_shapes(self):
        layer = Linear(rng, 4, 3)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(rng, 4, 3, bias=False)
        assert layer.bias is None
        zero = layer(Tensor(np.zeros((2, 4))))
        assert np.allclose(zero.data, 0)

    def test_parameters_registered(self):
        layer = Linear(rng, 4, 3)
        assert len(layer.parameters()) == 2


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(rng, 10, 4)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        assert np.allclose(out.data[0], out.data[1])

    def test_gradient_reaches_rows(self):
        emb = Embedding(rng, 10, 4)
        out = emb(np.array([2, 5]))
        out.sum().backward()
        grad = emb.weight.grad
        assert grad[2].sum() != 0 and grad[3].sum() == 0


class TestGRUCell:
    def test_shape(self):
        cell = GRUCell(rng, 6)
        h = Tensor(rng.normal(size=(4, 6)))
        m = Tensor(rng.normal(size=(4, 6)))
        assert cell(h, m).shape == (4, 6)

    def test_zero_update_gate_keeps_state(self):
        cell = GRUCell(rng, 4)
        # Force the update gate closed by biasing w_z strongly negative.
        cell.w_z.bias.data[:] = -50.0
        h = Tensor(rng.normal(size=(3, 4)))
        m = Tensor(rng.normal(size=(3, 4)))
        out = cell(h, m)
        assert np.allclose(out.data, h.data, atol=1e-8)


class TestLayerNorm:
    def test_normalizes(self):
        ln = LayerNorm(8)
        x = Tensor(rng.normal(5, 3, size=(4, 8)))
        out = ln(x)
        assert np.allclose(out.data.mean(axis=-1), 0, atol=1e-8)
        assert np.allclose(out.data.std(axis=-1), 1, atol=1e-4)

    def test_gradients_flow(self):
        ln = LayerNorm(4)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        ln(x).sum().backward()
        assert x.grad is not None


class TestRelationalAttention:
    def test_shape_and_bias_grad(self):
        att = RelationalAttention(rng, 8, num_edge_types=3, heads=2)
        x = Tensor(rng.normal(size=(5, 8)), requires_grad=True)
        matrix = (rng.random((3, 5, 5)) < 0.3).astype(float)
        out = att(x, matrix)
        assert out.shape == (5, 8)
        (out * out).sum().backward()
        assert att.edge_bias.grad is not None

    def test_edge_bias_changes_output(self):
        att = RelationalAttention(rng, 8, num_edge_types=2, heads=2)
        x = Tensor(rng.normal(size=(4, 8)))
        no_edges = np.zeros((2, 4, 4))
        # A non-uniform edge pattern: softmax is shift-invariant, so the
        # bias only matters when it differs across key positions.
        some_edges = np.zeros((2, 4, 4))
        some_edges[0, :, 0] = 1.0
        att.edge_bias.data[:] = 5.0
        a = att(x, no_edges).data
        b = att(x, some_edges).data
        assert not np.allclose(a, b)

    def test_dim_divisible_by_heads(self):
        import pytest

        with pytest.raises(ValueError):
            RelationalAttention(rng, 7, num_edge_types=2, heads=2)


class TestModuleRegistry:
    def test_nested_modules(self):
        class Outer(Module):
            def __init__(self):
                self.inner = Linear(rng, 2, 2)
                self.blocks = [Linear(rng, 2, 2), Linear(rng, 2, 2)]
                self.free = Tensor(np.zeros(2), requires_grad=True)

        outer = Outer()
        assert len(outer.parameters()) == 2 * 3 + 1

    def test_zero_grad(self):
        layer = Linear(rng, 2, 2)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        layer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())


class TestAdam:
    def test_minimizes_quadratic(self):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        optimizer = Adam([x], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            optimizer.step()
        assert np.abs(x.data).max() < 0.05

    def test_clip(self):
        x = Tensor(np.array([1e6]), requires_grad=True)
        optimizer = Adam([x], lr=0.1, clip=1.0)
        optimizer.zero_grad()
        (x * x).sum().backward()
        optimizer.step()
        assert np.isfinite(x.data).all()

    def test_skips_gradless_params(self):
        x = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([x], lr=0.1)
        optimizer.step()  # no grad: no crash, no change
        assert np.allclose(x.data, 1.0)
