"""End-to-end tests for the incremental mining pipeline.

The contract under test, in order of importance:

1. **Bit identity** — mined patterns and saved artifact bytes are
   identical with the cache off, cold, or warm.
2. **Incrementality** — a warm re-mine recomputes nothing when nothing
   changed, and only the affected shards when one file changed.
3. **Invalidation** — content edits, renames with identical bytes,
   config changes, and schema bumps all produce different keys (stale
   entries can never answer).
4. **Resilience** — a damaged or fault-injected cache falls back to a
   cold computation with identical results.
"""

import copy
import json

import pytest

from repro.cache import CACHE_SCHEMA_VERSION
from repro.core.namer import Namer, NamerConfig
from repro.core.persistence import namer_to_document
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.mining.miner import MiningConfig
from repro.resilience.faults import FAULTS, FaultPlan, FaultSpec

pytestmark = pytest.mark.cache

MINING = MiningConfig(min_pattern_support=8, min_path_frequency=4)


@pytest.fixture(scope="module")
def corpus():
    return generate_python_corpus(
        GeneratorConfig(num_repos=8, issue_rate=0.12, seed=7)
    )


def mine(corpus, cache_dir=None, *, mining=MINING, workers=1):
    namer = Namer(
        NamerConfig(
            mining=mining,
            workers=workers,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
        )
    )
    namer.mine(corpus)
    return namer


def doc_bytes(namer) -> bytes:
    return json.dumps(namer_to_document(namer), sort_keys=True).encode()


def level(namer, name) -> dict:
    return namer.summary.cache_stats.get(name, {})


def phase_names(namer) -> list[str]:
    return [row["phase"] for row in namer.summary.phase_timings]


# ----------------------------------------------------------------------
# Bit identity and zero-change warm runs
# ----------------------------------------------------------------------


class TestWarmIdentity:
    def test_cold_and_warm_match_uncached_exactly(self, corpus, tmp_path):
        baseline = mine(corpus)
        cold = mine(corpus, tmp_path / "c")
        warm = mine(corpus, tmp_path / "c")
        assert doc_bytes(cold) == doc_bytes(baseline)
        assert doc_bytes(warm) == doc_bytes(baseline)
        assert (
            cold.matcher.patterns
            == baseline.matcher.patterns
            == warm.matcher.patterns
        )

    def test_cold_run_stores_every_level(self, corpus, tmp_path):
        cold = mine(corpus, tmp_path / "c")
        stats = cold.summary.cache_stats
        for name in (
            "prepare", "pairs", "frequency", "growth", "prune", "stats", "mine",
        ):
            assert stats[name]["stores"] > 0, name
            assert stats[name]["hits"] == 0, name

    def test_warm_run_recomputes_nothing(self, corpus, tmp_path):
        mine(corpus, tmp_path / "c")
        warm = mine(corpus, tmp_path / "c")
        for name, stats in warm.summary.cache_stats.items():
            assert stats["misses"] == 0, name
            assert stats["stores"] == 0, name
            assert stats["hits"] > 0, name
        # The whole-kind memo answers both kinds, so no mining pass —
        # and in particular no prune_shard row (the incrementality
        # probe: that row counts *recomputed* shards) — ever runs.
        assert level(warm, "mine")["hits"] == 2
        for name in ("frequency", "growth", "prune"):
            assert name not in warm.summary.cache_stats, name
            assert name not in phase_names(warm), name
        assert "prune_shard" not in phase_names(warm)

    def test_uncached_namer_reports_no_cache_stats(self, corpus):
        assert mine(corpus).summary.cache_stats == {}

    def test_worker_count_does_not_invalidate(self, corpus, tmp_path):
        """Shard plans aim for CACHE_SHARD_TARGET regardless of the
        worker count, so re-mining warm with different parallelism
        still hits every shard entry."""
        cold = mine(corpus, tmp_path / "c", workers=1)
        warm = mine(corpus, tmp_path / "c", workers=4)
        assert doc_bytes(warm) == doc_bytes(cold)
        for name, stats in warm.summary.cache_stats.items():
            assert stats["misses"] == 0, name


# ----------------------------------------------------------------------
# One-file edits recompute one shard
# ----------------------------------------------------------------------


class TestIncrementalEdit:
    def test_comment_edit_recomputes_only_that_files_shard(
        self, corpus, tmp_path
    ):
        cold = mine(corpus, tmp_path / "c")
        edited = copy.deepcopy(corpus)
        edited.repositories[0].files[0].source += "\n# cache probe\n"
        warm = mine(edited, tmp_path / "c")

        nfiles = sum(len(r.files) for r in corpus.repositories)
        # Exactly the edited file re-prepares ...
        assert level(warm, "prepare")["misses"] == 1
        assert level(warm, "prepare")["hits"] == nfiles - 1
        # ... and exactly its statement shard re-counts.  (The second
        # pattern kind reuses the in-process frequency memo, so the
        # count is per-run, not per-kind.)
        total_shards = level(cold, "frequency")["stores"]
        assert total_shards >= 2
        assert level(warm, "frequency")["misses"] == 1
        assert level(warm, "frequency")["hits"] == total_shards - 1
        # A comment changes no statements, so the global frequent-path
        # and pattern sets are unchanged — later passes re-run only the
        # edited shard (once per pattern kind).
        assert level(warm, "growth")["misses"] == 2
        assert level(warm, "prune")["misses"] == 2
        # The statistics index re-counts only the edited shard too (the
        # extra miss/store is the corpus-level merged-index memo).
        assert level(cold, "stats")["stores"] == total_shards + 1
        assert level(warm, "stats")["misses"] == 2
        assert level(warm, "stats")["hits"] == total_shards - 1
        # The content changed, so both whole-kind memos miss (and are
        # re-stored for the next zero-change run).
        assert level(warm, "mine")["misses"] == 2
        assert level(warm, "mine")["stores"] == 2
        # Commit histories didn't change: the pair store still hits.
        assert level(warm, "pairs")["hits"] == 1
        # The mined artifact is identical — the edit was cosmetic.
        assert doc_bytes(warm) == doc_bytes(cold)

    def test_rename_with_identical_bytes_invalidates(self, corpus, tmp_path):
        """Statement provenance includes the file path, so a rename
        must re-prepare the file even though its bytes are unchanged."""
        mine(corpus, tmp_path / "c")
        renamed = copy.deepcopy(corpus)
        renamed.repositories[0].files[0].path += ".renamed.py"
        warm = mine(renamed, tmp_path / "c")
        assert level(warm, "prepare")["misses"] == 1
        assert warm.summary.num_patterns > 0


# ----------------------------------------------------------------------
# Invalidation: config and schema
# ----------------------------------------------------------------------


class TestInvalidation:
    def test_mining_config_change_invalidates_mining_not_prepare(
        self, corpus, tmp_path
    ):
        mine(corpus, tmp_path / "c")
        changed = MiningConfig(
            min_pattern_support=MINING.min_pattern_support + 1,
            min_path_frequency=MINING.min_path_frequency,
        )
        warm = mine(corpus, tmp_path / "c", mining=changed)
        # Preparation doesn't depend on mining thresholds: all hits.
        assert level(warm, "prepare")["misses"] == 0
        assert level(warm, "prepare")["hits"] > 0
        # Every mining-level entry is salted with the config: all miss.
        assert level(warm, "frequency")["hits"] == 0
        assert level(warm, "frequency")["misses"] > 0
        # And the run must match a from-scratch mine at those settings.
        assert doc_bytes(warm) == doc_bytes(mine(corpus, mining=changed))

    def test_commit_change_invalidates_confusing_kind_only(
        self, corpus, tmp_path
    ):
        """The confusing-pair list rides in the confusing-word kind's
        salt, so a commit-history change re-mines that kind while the
        consistency memo still answers — and the result matches a
        from-scratch mine over the changed corpus."""
        mine(corpus, tmp_path / "c")
        edited = copy.deepcopy(corpus)
        del edited.commits[len(edited.commits) // 2 :]
        warm = mine(edited, tmp_path / "c")
        assert level(warm, "pairs")["misses"] == 1
        assert level(warm, "mine")["hits"] == 1  # consistency
        assert level(warm, "mine")["misses"] == 1  # confusing words
        assert doc_bytes(warm) == doc_bytes(mine(edited))

    def test_schema_bump_orphans_every_entry(self, corpus, tmp_path, monkeypatch):
        mine(corpus, tmp_path / "c")
        monkeypatch.setattr(
            "repro.cache.contentcache.CACHE_SCHEMA_VERSION",
            CACHE_SCHEMA_VERSION + 1,
        )
        warm = mine(corpus, tmp_path / "c")
        for name, stats in warm.summary.cache_stats.items():
            assert stats["hits"] == 0, name
            # Old entries hash to different keys — unreachable, never
            # misread: these are plain misses, not corruption.
            assert stats["corrupt"] == 0, name


# ----------------------------------------------------------------------
# Damage and fault injection fall back cold
# ----------------------------------------------------------------------


class TestResilience:
    def test_injected_load_faults_fall_back_to_cold_compute(
        self, corpus, tmp_path
    ):
        cold = mine(corpus, tmp_path / "c")
        plan = FaultPlan([FaultSpec(site="cache.load", rate=1.0)], seed=3)
        with FAULTS.armed(plan):
            warm = mine(corpus, tmp_path / "c")
        assert doc_bytes(warm) == doc_bytes(cold)
        total_corrupt = sum(
            stats["corrupt"] for stats in warm.summary.cache_stats.values()
        )
        assert total_corrupt > 0

    def test_truncated_entries_fall_back_to_cold_compute(self, corpus, tmp_path):
        cold = mine(corpus, tmp_path / "c")
        for entry in (tmp_path / "c").rglob("*.bin"):
            entry.write_bytes(entry.read_bytes()[:-10])
        warm = mine(corpus, tmp_path / "c")
        assert doc_bytes(warm) == doc_bytes(cold)
        total_corrupt = sum(
            stats["corrupt"] for stats in warm.summary.cache_stats.values()
        )
        assert total_corrupt > 0
