"""Coverage for smaller public surfaces: ModuleIr helpers, vocabulary
edge cases, report shares with an untrained classifier, and the public
package API."""

import repro
from repro.lang.java.frontend import parse_java
from repro.lang.python_frontend import parse_module


class TestPackageApi:
    def test_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__


class TestModuleIr:
    def test_python_helpers(self):
        module = parse_module(
            "class A:\n    def m(self):\n        pass\ndef f():\n    pass"
        )
        assert len(module.classes()) == 1
        assert len(module.functions()) == 2
        assert module.language == "python"

    def test_java_helpers(self):
        module = parse_java(
            "class A { void m() { } }\nclass B { }"
        )
        assert len(module.classes()) == 2
        assert len(module.functions()) == 1
        assert module.language == "java"


class TestUntrainedClassifierBehavior:
    def test_classify_without_training_reports_all(self, small_corpus):
        from repro.core.namer import Namer, NamerConfig
        from tests.conftest import SMALL_MINING

        namer = Namer(NamerConfig(mining=SMALL_MINING))
        namer.mine(small_corpus)
        violations = namer.all_violations()
        # classifier enabled but never trained: everything passes through
        assert len(namer.classify(violations)) == len(violations)


class TestStatementAstDefaults:
    def test_source_defaults(self):
        module = parse_module("x = 1")
        stmt = module.statements[0]
        assert stmt.source == "x = 1"
        assert stmt.repo == ""


class TestEvaluationImports:
    def test_all_evaluation_modules_import(self):
        import repro.evaluation.breakdown
        import repro.evaluation.cross_validation
        import repro.evaluation.dl_comparison
        import repro.evaluation.examples
        import repro.evaluation.feature_weights
        import repro.evaluation.full_report
        import repro.evaluation.oracle
        import repro.evaluation.precision
        import repro.evaluation.speed
        import repro.evaluation.user_study  # noqa: F401
