"""Tests for the analysis service layer (`repro.service`).

Covers each layer in isolation — result cache, bounded request queue —
and the assembled stack: engine batching, hot reload, and a real HTTP
round-trip over localhost including cache-hit metrics.
"""

import threading
import time

import pytest

from repro.core.persistence import PersistenceError, save_namer
from repro.core.prepare import prepare_file
from repro.service.cache import ResultCache, content_key
from repro.service.client import HttpClient, InProcessClient, ServiceError
from repro.service.engine import AnalysisEngine, AnalysisRequest
from repro.service.queue import (
    QueueFullError,
    RequestQueue,
    RequestTimeout,
    ServiceClosed,
)
from repro.service.server import AnalysisServer

pytestmark = pytest.mark.service

UNPARSABLE = "def broken(:"


# ----------------------------------------------------------------------
# Shared fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def artifact_file(fitted_namer, tmp_path_factory):
    path = tmp_path_factory.mktemp("service") / "namer.json"
    save_namer(fitted_namer, path)
    return path


@pytest.fixture(scope="module")
def report_source(fitted_namer, small_corpus):
    """A corpus file on which the full pipeline reports at least one
    violation (so HTTP assertions have something to check)."""
    for repo, source in small_corpus.files():
        prepared = prepare_file(source, repo=repo.name)
        if prepared is not None and fitted_namer.detect(prepared):
            return source
    pytest.fail("no corpus file produced a report")


@pytest.fixture()
def engine(fitted_namer):
    engine = AnalysisEngine(
        namer=fitted_namer, workers=2, queue_capacity=8, cache_entries=32
    )
    yield engine
    engine.shutdown(drain=False, timeout=5)


@pytest.fixture(scope="module")
def server(artifact_file):
    server = AnalysisServer(
        AnalysisEngine(
            artifact_path=str(artifact_file),
            workers=2,
            queue_capacity=8,
            cache_entries=32,
        ),
        port=0,
    ).start()
    yield server
    server.stop(drain=True)


@pytest.fixture(scope="module")
def client(server):
    return HttpClient(server.url, timeout=30)


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        key = content_key("x = 1", "python", "a.py")
        assert cache.get(key) is None
        cache.put(key, "value")
        assert cache.get(key) == "value"
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_content_key_sensitivity(self):
        base = content_key("x = 1", "python", "a.py")
        assert content_key("x = 2", "python", "a.py") != base
        assert content_key("x = 1", "java", "a.py") != base
        assert content_key("x = 1", "python", "b.py") != base

    def test_lru_eviction_drops_oldest(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_invalidate_and_clear(self):
        cache = ResultCache(max_entries=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.get("a") is None
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None


# ----------------------------------------------------------------------
# Request queue
# ----------------------------------------------------------------------


class TestRequestQueue:
    def test_runs_jobs_and_returns_results(self):
        q = RequestQueue(capacity=4, workers=2)
        try:
            assert q.run(lambda: 21 * 2, timeout=5) == 42
        finally:
            q.shutdown()

    def test_job_exceptions_propagate(self):
        q = RequestQueue(capacity=4, workers=1)
        try:
            with pytest.raises(ValueError, match="boom"):
                q.run(lambda: (_ for _ in ()).throw(ValueError("boom")), timeout=5)
        finally:
            q.shutdown()

    def test_backpressure_rejects_when_full(self):
        release = threading.Event()
        q = RequestQueue(capacity=1, workers=1)
        try:
            started = threading.Event()

            def blocker():
                started.set()
                release.wait(10)

            q.submit(blocker)
            started.wait(5)  # worker busy; capacity now measures the backlog
            q.submit(lambda: None)  # fills the single queue slot
            with pytest.raises(QueueFullError):
                q.submit(lambda: None)
        finally:
            release.set()
            q.shutdown()

    def test_per_request_timeout(self):
        release = threading.Event()
        q = RequestQueue(capacity=2, workers=1)
        try:
            ticket = q.submit(lambda: release.wait(10))
            with pytest.raises(RequestTimeout):
                ticket.result(timeout=0.05)
        finally:
            release.set()
            q.shutdown()

    def test_graceful_shutdown_drains_in_flight(self):
        q = RequestQueue(capacity=4, workers=1)
        done = []
        gate = threading.Event()

        def slow(i):
            gate.wait(5)
            time.sleep(0.01)
            done.append(i)
            return i

        tickets = [q.submit(lambda i=i: slow(i)) for i in range(3)]
        gate.set()
        q.shutdown(drain=True, timeout=10)
        assert sorted(done) == [0, 1, 2]
        assert [t.result(0) for t in tickets] == [0, 1, 2]
        with pytest.raises(ServiceClosed):
            q.submit(lambda: None)

    def test_abort_shutdown_rejects_queued_jobs(self):
        release = threading.Event()
        q = RequestQueue(capacity=4, workers=1)
        started = threading.Event()

        def blocker():
            started.set()
            release.wait(10)
            return "in-flight"

        first = q.submit(blocker)
        started.wait(5)
        queued = q.submit(lambda: "never")
        # Release the blocker only after shutdown has begun (and has
        # already rejected the queued job); shutdown blocks on the join.
        threading.Timer(0.2, release.set).start()
        q.shutdown(drain=False, timeout=10)
        assert first.result(5) == "in-flight"  # in-flight work still finishes
        with pytest.raises(ServiceClosed):
            queued.result(0)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


class TestAnalysisEngine:
    def test_cache_miss_then_hit(self, engine, report_source):
        request = AnalysisRequest(source=report_source.source, path=report_source.path)
        first = engine.analyze(request)
        second = engine.analyze(request)
        assert not first.cached and second.cached
        assert second.reports == first.reports
        assert engine.cache.stats.hits >= 1

    def test_invalidation_forces_reanalysis(self, engine, report_source):
        request = AnalysisRequest(source=report_source.source, path=report_source.path)
        engine.analyze(request)
        assert engine.cache.invalidate(request.cache_key())
        assert not engine.analyze(request).cached

    def test_batch_matches_single_file_analysis(self, engine, small_corpus):
        sources = [source for _, source in small_corpus.files()][:4]
        requests = [
            AnalysisRequest(source=s.source, path=s.path, repo="service")
            for s in sources
        ]
        batch = engine.analyze_many(requests)
        assert [r.path for r in batch] == [s.path for s in sources]
        for request, result in zip(requests, batch):
            engine.cache.invalidate(request.cache_key())
            assert engine.analyze(request).reports == result.reports

    def test_batch_reuses_cache(self, engine, report_source):
        requests = [
            AnalysisRequest(source=report_source.source, path=report_source.path)
        ]
        engine.analyze_many(requests)
        again = engine.analyze_many(requests)
        assert again[0].cached

    def test_unparsable_source_reports_error(self, engine):
        result = engine.analyze(AnalysisRequest(source=UNPARSABLE, path="bad.py"))
        assert result.error is not None and result.reports == []
        assert engine.metrics.errors == 1

    def test_detect_many_parity_with_detect(self, fitted_namer, report_source):
        prepared = prepare_file(report_source, repo="service")
        single = fitted_namer.detect(prepared)
        batch = fitted_namer.detect_many([prepared, prepared])
        for group in batch:
            assert [(r.observed, r.suggested) for r in group] == [
                (r.observed, r.suggested) for r in single
            ]
            assert [r.score for r in group] == pytest.approx(
                [r.score for r in single]
            )

    def test_reload_swaps_artifact_and_clears_cache(
        self, engine, artifact_file, report_source
    ):
        request = AnalysisRequest(source=report_source.source, path=report_source.path)
        engine.analyze(request)
        outcome = engine.reload(str(artifact_file))
        assert outcome["cache_entries_dropped"] >= 1
        assert len(engine.cache) == 0
        assert engine.metrics.reloads == 1
        assert not engine.analyze(request).cached

    def test_reload_rejects_bad_artifact(self, engine, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(PersistenceError):
            engine.reload(str(bad))

    def test_in_process_client_round_trip(self, engine, report_source):
        client = InProcessClient(engine)
        assert client.health()["status"] == "ok"
        result = client.analyze(report_source.source, path=report_source.path)
        assert result["reports"]
        assert client.metrics()["requests_total"] >= 1


# ----------------------------------------------------------------------
# HTTP server: end-to-end over localhost
# ----------------------------------------------------------------------


class TestHttpService:
    def test_health(self, client, artifact_file):
        health = client.health()
        assert health["status"] == "ok"
        assert health["artifacts"] == str(artifact_file)
        assert health["patterns"] > 0

    def test_analyze_round_trip_with_correct_violations(
        self, client, fitted_namer, report_source
    ):
        expected = {
            (r.observed, r.suggested)
            for r in fitted_namer.detect(prepare_file(report_source, repo="service"))
        }
        result = client.analyze(
            report_source.source, path=report_source.path, language="python"
        )
        assert result["error"] is None
        got = {(r["observed"], r["suggested"]) for r in result["reports"]}
        assert got == expected
        for row in result["reports"]:
            assert row["file"] == report_source.path
            assert row["line"] >= 1
            assert row["fixed_identifier"]

    def test_second_submission_hits_cache(self, client, report_source):
        client.analyze(report_source.source, path=report_source.path)
        result = client.analyze(report_source.source, path=report_source.path)
        assert result["cached"] is True
        metrics = client.metrics()
        assert metrics["cache"]["hit_rate"] > 0
        assert metrics["cache"]["hits"] >= 1

    def test_metrics_counters_and_latency(self, client, report_source):
        client.analyze(report_source.source, path=report_source.path)
        metrics = client.metrics()
        assert metrics["requests_total"] >= 1
        assert metrics["violations_reported"] >= 1
        assert metrics["latency"]["count"] >= 1
        assert metrics["latency"]["p50_ms"] >= 0
        assert metrics["queue"]["capacity"] == 8

    def test_batch_analyze_over_http(self, client, report_source):
        results = client.analyze_files(
            [
                {"path": report_source.path, "source": report_source.source},
                {"path": "broken.py", "source": UNPARSABLE},
            ]
        )
        assert len(results) == 2
        assert results[0]["reports"]
        assert results[1]["error"] is not None

    def test_reload_over_http(self, client, artifact_file):
        outcome = client.reload(artifact_file)
        assert outcome["artifacts"] == str(artifact_file)

    def test_bad_requests_are_4xx(self, client):
        with pytest.raises(ServiceError) as exc:
            client.analyze_files([{"path": "x.py"}])  # no source
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client._call("POST", "/analyze", {"source": "x=1", "language": "cobol"})
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client._call("GET", "/nope")
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            client.reload("/nonexistent/namer.json")
        assert exc.value.status == 400

    def test_cache_disposition_header(self, client, report_source):
        entries = [{"path": "header.py", "source": report_source.source}]
        client.analyze_files(entries)
        first = client.last_headers["X-Repro-Cache"]
        assert first.endswith("miss=1") or "memory=1" in first
        client.analyze_files(entries)
        assert "memory=1" in client.last_headers["X-Repro-Cache"]


# ----------------------------------------------------------------------
# Persistent (disk) result cache: X-Repro-Cache, /metrics, restarts
# ----------------------------------------------------------------------


@pytest.mark.cache
class TestPersistentDetectCache:
    def fresh_engine(self, artifact_file, cache_dir):
        return AnalysisEngine(
            artifact_path=str(artifact_file),
            workers=1,
            cache_entries=32,
            cache_dir=str(cache_dir),
        )

    def test_disk_hit_survives_engine_restart(
        self, artifact_file, report_source, tmp_path
    ):
        request = AnalysisRequest(
            source=report_source.source, path=report_source.path
        )
        engine = self.fresh_engine(artifact_file, tmp_path / "c")
        try:
            cold = engine.analyze(request)
            assert cold.cached is False and cold.cache_level is None
            warm = engine.analyze(request)
            assert warm.cache_level == "memory"
        finally:
            engine.shutdown(drain=False, timeout=5)

        engine = self.fresh_engine(artifact_file, tmp_path / "c")
        try:
            disk = engine.analyze(request)
            assert disk.cached is True and disk.cache_level == "disk"
            assert disk.reports == cold.reports
            # A disk hit warms the in-memory LRU for the next call.
            assert engine.analyze(request).cache_level == "memory"
        finally:
            engine.shutdown(drain=False, timeout=5)

    def test_errors_are_never_persisted(self, artifact_file, tmp_path):
        request = AnalysisRequest(source=UNPARSABLE, path="broken.py")
        engine = self.fresh_engine(artifact_file, tmp_path / "c")
        try:
            assert engine.analyze(request).error is not None
        finally:
            engine.shutdown(drain=False, timeout=5)
        engine = self.fresh_engine(artifact_file, tmp_path / "c")
        try:
            again = engine.analyze(request)
            assert again.error is not None and again.cache_level is None
        finally:
            engine.shutdown(drain=False, timeout=5)

    def test_metrics_expose_cache_sections(self, artifact_file, tmp_path):
        engine = self.fresh_engine(artifact_file, tmp_path / "c")
        try:
            engine.analyze(AnalysisRequest(source="x = 1\n", path="m.py"))
            metrics = engine.metrics_json()
            assert metrics["content_cache"]["detect"]["stores"] >= 1
            assert isinstance(metrics["mining_cache"], dict)
        finally:
            engine.shutdown(drain=False, timeout=5)

    def test_engine_without_cache_dir_reports_empty_sections(self, engine):
        metrics = engine.metrics_json()
        assert metrics["content_cache"] == {}

    def test_in_process_client_reports_disposition(
        self, artifact_file, report_source, tmp_path
    ):
        engine = self.fresh_engine(artifact_file, tmp_path / "c")
        try:
            client = InProcessClient(engine)
            entries = [
                {"path": report_source.path, "source": report_source.source}
            ]
            client.analyze_files(entries)
            assert client.last_headers["X-Repro-Cache"] == "memory=0 disk=0 miss=1"
            client.analyze_files(entries)
            assert client.last_headers["X-Repro-Cache"] == "memory=1 disk=0 miss=0"
        finally:
            engine.shutdown(drain=False, timeout=5)


# ----------------------------------------------------------------------
# Races: shutdown vs. in-flight submits, reload vs. in-flight analyze
# ----------------------------------------------------------------------


class TestServiceRaces:
    """Concurrency seams exercised with delay faults from the
    resilience harness (`repro.resilience.faults`): every request is
    either served completely or rejected cleanly — never half-done,
    never a hang."""

    def test_shutdown_drains_under_concurrent_submits(self, fitted_namer):
        from repro.resilience.faults import FAULTS, FaultPlan, FaultSpec

        engine = AnalysisEngine(
            namer=fitted_namer, workers=2, queue_capacity=16, cache_entries=0
        )
        # Each prepare sleeps a little so shutdown overlaps live work.
        plan = FaultPlan(
            [FaultSpec(site="engine.prepare", delay=0.02, raises=None)]
        )
        outcomes: list[str] = []
        lock = threading.Lock()

        def submit(i: int) -> None:
            try:
                result = engine.analyze(
                    AnalysisRequest(source="x = 1\n", path=f"race_{i}.py"),
                    timeout=10,
                )
                with lock:
                    outcomes.append("done" if result.error is None else "error")
            except (ServiceClosed, QueueFullError):
                with lock:
                    outcomes.append("rejected")

        with FAULTS.armed(plan):
            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            time.sleep(0.01)
            engine.shutdown(drain=True, timeout=30)
            for t in threads:
                t.join(timeout=10)
        assert not any(t.is_alive() for t in threads), "a submit hung"
        # every request got exactly one clean outcome, and the work the
        # queue accepted before close was drained, not dropped
        assert len(outcomes) == 8
        assert set(outcomes) <= {"done", "rejected"}
        with pytest.raises(ServiceClosed):
            engine.queue.submit(lambda: None)

    def test_reload_races_inflight_analyze(
        self, client, artifact_file, report_source
    ):
        from repro.resilience.faults import FAULTS, FaultPlan, FaultSpec

        # Slow down exactly the in-flight request so /reload lands while
        # it is being prepared on a worker thread.
        plan = FaultPlan(
            [FaultSpec(site="engine.prepare", match="inflight_race.py",
                       delay=0.3, raises=None)]
        )
        box: dict[str, dict] = {}

        def analyze() -> None:
            box["result"] = client.analyze(
                report_source.source, path="inflight_race.py"
            )

        with FAULTS.armed(plan):
            thread = threading.Thread(target=analyze)
            thread.start()
            time.sleep(0.1)
            outcome = client.reload(artifact_file)
            thread.join(timeout=30)
        assert not thread.is_alive(), "in-flight analyze hung across reload"
        assert outcome["artifacts"] == str(artifact_file)
        result = box["result"]
        assert result["error"] is None and result["reports"]
        # Generation fencing: the in-flight result must not have seeded
        # the post-reload cache, so the same request misses once ...
        again = client.analyze(report_source.source, path="inflight_race.py")
        assert again["cached"] is False
        # ... and only then is cached as usual.
        third = client.analyze(report_source.source, path="inflight_race.py")
        assert third["cached"] is True

    def test_concurrent_analyze_during_reload_storm(
        self, client, artifact_file, report_source
    ):
        errors: list[Exception] = []

        def analyze_loop() -> None:
            for i in range(5):
                try:
                    client.analyze(
                        report_source.source, path=f"storm_{i % 2}.py"
                    )
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(exc)

        threads = [threading.Thread(target=analyze_loop) for _ in range(3)]
        for t in threads:
            t.start()
        for _ in range(3):
            client.reload(artifact_file)
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
