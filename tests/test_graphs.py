"""Tests for program graph construction."""

import numpy as np

from repro.baselines.graphs import (
    EDGE_TYPES,
    NUM_EDGE_TYPES,
    ProgramGraph,
    Vocabulary,
    build_graphs,
)
from repro.lang.python_frontend import parse_module

SOURCE = """
class Worker:
    def run(self, task):
        result = task
        total = result
        self.save(total)

def helper(x):
    y = x
    return y
"""


def graphs():
    return build_graphs(parse_module(SOURCE, "w.py", "r"))


class TestBuildGraphs:
    def test_one_graph_per_top_level(self):
        assert len(graphs()) == 2

    def test_imports_skipped(self):
        module = parse_module("import os\nx = os")
        assert all("os" != g.labels[0] for g in build_graphs(module))

    def test_child_edges_form_tree(self):
        g = graphs()[0]
        child_edges = [(s, d) for t, s, d in g.edges if EDGE_TYPES[t] == "CHILD"]
        # every node except the root has exactly one parent
        targets = [d for _, d in child_edges]
        assert len(set(targets)) == len(targets)
        assert len(child_edges) == g.num_nodes - 1

    def test_next_token_chain(self):
        g = graphs()[1]
        nt = [(s, d) for t, s, d in g.edges if EDGE_TYPES[t] == "NEXT_TOKEN"]
        assert nt  # helper has several terminals

    def test_last_use_edges(self):
        g = graphs()[0]
        lu = [(s, d) for t, s, d in g.edges if EDGE_TYPES[t] == "LAST_USE"]
        # 'result' and 'total' are used twice each
        assert len(lu) >= 2

    def test_last_write_edges(self):
        g = graphs()[0]
        lw = [(s, d) for t, s, d in g.edges if EDGE_TYPES[t] == "LAST_WRITE"]
        assert lw

    def test_computed_from(self):
        g = graphs()[0]
        cf = [(s, d) for t, s, d in g.edges if EDGE_TYPES[t] == "COMPUTED_FROM"]
        assert cf

    def test_var_nodes(self):
        g = graphs()[0]
        assert "task" in g.var_nodes and "result" in g.var_nodes
        for name, nodes in g.var_nodes.items():
            for node_id in nodes:
                assert g.labels[node_id] == name

    def test_node_lines_monotone_data(self):
        g = graphs()[0]
        assert len(g.node_lines) == g.num_nodes
        assert max(g.node_lines) >= 2

    def test_max_nodes_filter(self):
        module = parse_module(SOURCE)
        assert build_graphs(module, max_nodes=5) == []

    def test_edge_type_matrix(self):
        g = graphs()[1]
        matrix = g.edge_type_matrix()
        assert matrix.shape == (NUM_EDGE_TYPES, g.num_nodes, g.num_nodes)
        assert matrix.sum() == len(g.edges)


class TestVocabulary:
    def test_build_with_min_count(self):
        vocab = Vocabulary.build(graphs(), min_count=1)
        assert len(vocab) > 1

    def test_unknown_maps_to_zero(self):
        vocab = Vocabulary.build(graphs(), min_count=1)
        encoded = vocab.encode(["<never-seen-label>"])
        assert encoded.tolist() == [0]

    def test_encode_known(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.encode(["a", "b", "a"]).tolist() == [1, 2, 1]

    def test_min_count_filters(self):
        g = ProgramGraph(labels=["x", "x", "rare"], edges=[])
        vocab = Vocabulary.build([g], min_count=2)
        assert vocab.encode(["rare"]).tolist() == [0]
        assert vocab.encode(["x"]).tolist() != [0]
