"""Differential + damage suite for frozen matcher artifacts.

The frozen blob (``repro.mining.frozen``) is a pure serving-side
acceleration: a namer loaded from it must be indistinguishable — byte
for byte — from one decoded out of the JSON artifact, across every
matcher configuration and worker count.  And because blobs live on
disks, every kind of damage (truncation, bit flips, bad magic, wrong
schema era) must read as a *miss* that falls back to the JSON path,
never as wrong output or a crash.
"""

from __future__ import annotations

import json
import logging
import pickle

import pytest

from repro.core.namer import Namer, NamerConfig
from repro.core.persistence import namer_to_document, save_document, save_namer
from repro.mining.frozen import (
    FROZEN_SCHEMA,
    FrozenArtifact,
    FrozenError,
    FrozenStats,
    default_frozen_path,
    freeze_namer,
    load_batch_tables,
    load_frozen_namer,
)
from repro.mining.matcher import PatternMatcher
from repro.resilience.checkpoint import document_checksum
from repro.resilience.faults import FAULTS, FaultPlan, FaultSpec
from repro.service.engine import AnalysisEngine

pytestmark = pytest.mark.frozen


@pytest.fixture(scope="module")
def frozen_setup(fitted_namer, tmp_path_factory):
    root = tmp_path_factory.mktemp("frozen")
    artifact = root / "namer.json"
    save_namer(fitted_namer, artifact)
    frozen_path = default_frozen_path(artifact)
    summary = freeze_namer(fitted_namer, frozen_path)
    return fitted_namer, artifact, frozen_path, summary


def report_blob(groups) -> str:
    return json.dumps(
        [[r.to_json() for r in g] for g in groups], sort_keys=True
    )


# ----------------------------------------------------------------------
# Roundtrip: freeze -> load is lossless
# ----------------------------------------------------------------------


class TestRoundtrip:
    def test_summary_counts(self, frozen_setup):
        namer, _, frozen_path, summary = frozen_setup
        assert summary["patterns"] == len(namer.matcher.patterns)
        assert summary["bytes"] == frozen_path.stat().st_size
        assert summary["arrays"] > 50

    def test_fingerprint_is_document_checksum(self, frozen_setup):
        namer, _, frozen_path, summary = frozen_setup
        assert summary["fingerprint"] == document_checksum(
            namer_to_document(namer)
        )
        loaded = load_frozen_namer(frozen_path)
        assert loaded.frozen_fingerprint == summary["fingerprint"]
        # The loaded namer re-encodes to the exact same document, so
        # the precomputed fingerprint is honest.
        assert document_checksum(namer_to_document(loaded)) == (
            summary["fingerprint"]
        )

    def test_resave_is_byte_identical(self, frozen_setup, tmp_path):
        namer, artifact, frozen_path, _ = frozen_setup
        loaded = load_frozen_namer(frozen_path)
        resaved = tmp_path / "resaved.json"
        save_document(namer_to_document(loaded), resaved)
        assert resaved.read_bytes() == artifact.read_bytes()

    def test_stats_counters_equal_in_order(self, frozen_setup):
        namer, _, frozen_path, _ = frozen_setup
        loaded = load_frozen_namer(frozen_path)
        for name in ("matches", "satisfactions", "violations"):
            ours = getattr(loaded.stats, name)
            theirs = getattr(namer.stats, name)
            for level in ("file", "repo", "dataset"):
                assert ours[level] == theirs[level]
                # insertion order too — re-saves depend on it
                assert list(ours[level]) == list(theirs[level])
        assert loaded.stats.statement_counts == namer.stats.statement_counts
        assert loaded.stats.total_statements == namer.stats.total_statements

    def test_classifier_scores_survive(self, frozen_setup):
        namer, _, frozen_path, _ = frozen_setup
        if namer.classifier is None:
            pytest.skip("fitted_namer has no trained classifier")
        loaded = load_frozen_namer(frozen_path)
        assert loaded.classifier is not None
        assert float(loaded.classifier.classifier.intercept_) == float(
            namer.classifier.classifier.intercept_
        )

    def test_load_batch_tables(self, frozen_setup):
        namer, _, frozen_path, _ = frozen_setup
        bt = load_batch_tables(frozen_path)
        assert bt.n_nodes == len(namer.matcher._automaton._children)

    def test_freeze_refuses_legacy_matchers(self, tmp_path, fitted_namer):
        unmined = Namer(NamerConfig())
        with pytest.raises(FrozenError, match="mine"):
            freeze_namer(unmined, tmp_path / "x.frozen")
        legacy = Namer(NamerConfig())
        legacy.stats = fitted_namer.stats
        legacy.matcher = PatternMatcher(
            fitted_namer.matcher.patterns, use_automaton=False
        )
        with pytest.raises(FrozenError, match="automaton"):
            freeze_namer(legacy, tmp_path / "y.frozen")


# ----------------------------------------------------------------------
# Differential: frozen loads serve the same bytes
# ----------------------------------------------------------------------


class TestDifferential:
    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_detect_parity_across_loads(self, frozen_setup, workers):
        namer, _, frozen_path, _ = frozen_setup
        loaded = load_frozen_namer(frozen_path)
        prepared = list(namer.prepared)
        reference = report_blob(namer.detect_many(prepared, workers=workers))
        assert report_blob(
            loaded.detect_many(prepared, workers=workers)
        ) == reference

    @pytest.mark.parametrize(
        "use_frozen,use_interner,use_automaton",
        [
            (False, True, True),
            (True, False, True),
            (False, False, True),
            (False, True, False),
        ],
    )
    def test_detect_parity_across_matcher_arms(
        self, frozen_setup, use_frozen, use_interner, use_automaton
    ):
        namer, _, _, _ = frozen_setup
        prepared = list(namer.prepared)
        reference = report_blob(namer.detect_many(prepared))
        original = namer.matcher
        try:
            namer.matcher = PatternMatcher(
                original.patterns,
                prefix_counts=original._corpus_counts,
                use_frozen=use_frozen,
                use_interner=use_interner,
                use_automaton=use_automaton,
            )
            assert report_blob(namer.detect_many(prepared)) == reference
        finally:
            namer.matcher = original

    def test_frozen_namer_pickles_for_pool_workers(self, frozen_setup):
        namer, _, frozen_path, _ = frozen_setup
        loaded = load_frozen_namer(frozen_path)
        clone = pickle.loads(pickle.dumps(loaded.matcher))
        prepared = list(namer.prepared)
        reference = report_blob(namer.detect_many(prepared))
        try:
            loaded.matcher = clone
            assert report_blob(loaded.detect_many(prepared)) == reference
        finally:
            pass

    def test_frozen_stats_pickle_remaps(self, frozen_setup):
        namer, _, frozen_path, _ = frozen_setup
        loaded = load_frozen_namer(frozen_path)
        assert isinstance(loaded.stats, FrozenStats)
        clone = pickle.loads(pickle.dumps(loaded.stats))
        assert clone.matches == namer.stats.matches
        assert clone.total_statements == namer.stats.total_statements


# ----------------------------------------------------------------------
# Damage is a miss
# ----------------------------------------------------------------------


def _copy(path, target):
    target.write_bytes(path.read_bytes())
    return target


class TestDamage:
    def test_truncation_raises(self, frozen_setup, tmp_path):
        _, _, frozen_path, _ = frozen_setup
        hurt = _copy(frozen_path, tmp_path / "trunc.frozen")
        hurt.write_bytes(hurt.read_bytes()[: hurt.stat().st_size // 2])
        with pytest.raises(FrozenError):
            load_frozen_namer(hurt)

    def test_bit_flip_raises(self, frozen_setup, tmp_path):
        _, _, frozen_path, _ = frozen_setup
        hurt = _copy(frozen_path, tmp_path / "flip.frozen")
        blob = bytearray(hurt.read_bytes())
        blob[len(blob) - 17] ^= 0x40  # somewhere in the last array
        hurt.write_bytes(bytes(blob))
        with pytest.raises(FrozenError, match="CRC"):
            load_frozen_namer(hurt)

    def test_bad_magic_raises(self, tmp_path):
        junk = tmp_path / "junk.frozen"
        junk.write_bytes(b"NOTAFROZENBLOB" * 10)
        with pytest.raises(FrozenError, match="magic"):
            load_frozen_namer(junk)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FrozenError):
            load_frozen_namer(tmp_path / "absent.frozen")

    def test_wrong_schema_era_raises(self, frozen_setup, tmp_path):
        _, _, frozen_path, _ = frozen_setup
        blob = bytearray(frozen_path.read_bytes())
        hlen = int.from_bytes(bytes(blob[8:16]), "little")
        header = json.loads(bytes(blob[16 : 16 + hlen]))
        header["frozen_schema"] = FROZEN_SCHEMA + 1
        # re-encode at the same length so offsets stay valid
        encoded = json.dumps(header, separators=(",", ":")).encode()
        hurt = tmp_path / "era.frozen"
        if len(encoded) == hlen:
            blob[16 : 16 + hlen] = encoded
            hurt.write_bytes(bytes(blob))
            with pytest.raises(FrozenError, match="schema"):
                FrozenArtifact.open(hurt)
        else:  # header length shifted; truncated-header check catches it
            blob[8:16] = (hlen + 10 ** 9).to_bytes(8, "little")
            hurt.write_bytes(bytes(blob))
            with pytest.raises(FrozenError):
                FrozenArtifact.open(hurt)


# ----------------------------------------------------------------------
# The serving fallback ladder
# ----------------------------------------------------------------------


class TestEngineFallback:
    def test_engine_prefers_frozen(self, frozen_setup):
        _, artifact, _, summary = frozen_setup
        engine = AnalysisEngine(artifact_path=str(artifact), workers=1)
        try:
            metrics = engine.metrics_json()
            assert metrics["artifact_source"] == "frozen"
            assert metrics["startup_seconds"] is not None
            assert metrics["artifact_load_seconds"] is not None
            assert engine._namer.frozen_fingerprint == summary["fingerprint"]
        finally:
            engine.shutdown(drain=False)

    def test_damaged_blob_falls_back_to_json(
        self, frozen_setup, tmp_path, caplog
    ):
        namer, artifact, frozen_path, _ = frozen_setup
        twin = _copy(artifact, tmp_path / "namer.json")
        hurt = _copy(frozen_path, default_frozen_path(twin))
        blob = bytearray(hurt.read_bytes())
        blob[-9] ^= 0x01
        hurt.write_bytes(bytes(blob))
        with caplog.at_level(logging.WARNING, logger="repro.service.engine"):
            engine = AnalysisEngine(artifact_path=str(twin), workers=1)
        try:
            assert engine.metrics_json()["artifact_source"] == "json"
            assert any("falling back" in r.message for r in caplog.records)
            prepared = list(namer.prepared)
            assert report_blob(
                engine._namer.detect_many(prepared)
            ) == report_blob(namer.detect_many(prepared))
        finally:
            engine.shutdown(drain=False)

    def test_no_frozen_flag_skips_the_blob(self, frozen_setup):
        _, artifact, _, _ = frozen_setup
        engine = AnalysisEngine(
            artifact_path=str(artifact), workers=1, use_frozen=False
        )
        try:
            assert engine.metrics_json()["artifact_source"] == "json"
        finally:
            engine.shutdown(drain=False)

    def test_frozen_load_fault_site_forces_fallback(
        self, frozen_setup, caplog
    ):
        _, artifact, _, _ = frozen_setup
        plan = FaultPlan([FaultSpec(site="frozen.load")], seed=1)
        with caplog.at_level(logging.WARNING, logger="repro.service.engine"):
            with FAULTS.armed(plan):
                engine = AnalysisEngine(artifact_path=str(artifact), workers=1)
                try:
                    assert engine.metrics_json()["artifact_source"] == "json"
                finally:
                    engine.shutdown(drain=False)
        assert any("falling back" in r.message for r in caplog.records)
