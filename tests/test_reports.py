"""Tests for report fix rendering."""

from repro.core.namepath import extract_name_paths
from repro.core.patterns import confusing_word_pattern, find_violation
from repro.core.reports import render_fixed_identifier
from repro.core.transform import transform_statement
from repro.lang.python_frontend import parse_statement


def violation_for(source, origins, correct_word, subtoken_position=None):
    """Build a violation whose deduction targets the callee's subtoken."""
    stmt = transform_statement(parse_statement(source), origins)
    paths = extract_name_paths(stmt, max_paths=10)
    # Pick the deduction target among the name-subtoken paths by its
    # position in extraction order.
    observed_paths = [p for p in paths if p.end not in (None, "NUM", "STR", "BOOL")]
    target = observed_paths[subtoken_position or 0]
    pattern = confusing_word_pattern(
        [p for p in paths if p.prefix != target.prefix][:2],
        target.with_end(correct_word),
    )
    return find_violation(pattern, stmt, paths)


class TestRenderFixedIdentifier:
    def test_camel_case_fix(self):
        violation = violation_for(
            "self.assertTrue(x, 90)", {"self": "TestCase"}, "Equal",
            subtoken_position=2,  # paths: self, assert, True, x, NUM
        )
        assert violation is not None
        assert violation.observed == "True"
        assert render_fixed_identifier(violation) == "assertEqual"

    def test_snake_case_fix(self):
        violation = violation_for(
            "num_or_process = 3", {}, "of", subtoken_position=1
        )
        assert violation.observed == "or"
        assert render_fixed_identifier(violation) == "num_of_process"

    def test_single_token_fix(self):
        violation = violation_for("x = por", {}, "port", subtoken_position=1)
        assert render_fixed_identifier(violation) == "port"

    def test_first_subtoken_camel(self):
        violation = violation_for(
            "getValue()", {}, "set", subtoken_position=0
        )
        assert violation.observed == "get"
        assert render_fixed_identifier(violation) == "setValue"
