"""Tests for edit distance (classifier feature 16)."""

import pytest
from hypothesis import given, strategies as st

from repro.naming.distance import edit_distance, normalized_edit_distance

words = st.text(alphabet="abcdef", max_size=12)


class TestEditDistance:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("kitten", "sitting", 3),
            ("", "abc", 3),
            ("True", "Equal", 4),
            ("por", "port", 1),
        ],
    )
    def test_known(self, a, b, expected):
        assert edit_distance(a, b) == expected

    @given(words, words)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(words)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(words, words)
    def test_zero_iff_equal(self, a, b):
        assert (edit_distance(a, b) == 0) == (a == b)

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(words, words)
    def test_bounded_by_longer(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))


class TestNormalizedEditDistance:
    def test_empty(self):
        assert normalized_edit_distance("", "") == 0.0

    @given(words, words)
    def test_in_unit_interval(self, a, b):
        assert 0.0 <= normalized_edit_distance(a, b) <= 1.0
