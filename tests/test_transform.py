"""Tests for the AST+ transformation (Section 3.1 steps 1-4)."""

from repro.core.transform import TransformConfig, transform_statement
from repro.lang.python_frontend import parse_statement


def transformed(source: str, origins=None, config=TransformConfig()):
    return transform_statement(parse_statement(source), origins, config)


def find_values(root, value):
    return [n for n in root.walk() if n.value == value]


class TestLiteralAbstraction:
    def test_num(self):
        root = transformed("x = 90").root
        assert find_values(root, "NUM")
        assert not find_values(root, "90")

    def test_str(self):
        assert find_values(transformed("x = 'a'").root, "STR")

    def test_bool(self):
        assert find_values(transformed("x = True").root, "BOOL")

    def test_literal_gets_numst1(self):
        root = transformed("x = 90").root
        num = next(n for n in root.walk() if n.kind == "Num")
        assert num.children[0].value == "NumST(1)"


class TestNumArgs:
    def test_call_arity(self):
        root = transformed("self.assertTrue(a, 90)").root
        assert root.value == "NumArgs(2)"

    def test_zero_args(self):
        root = transformed("f()").root
        assert root.value == "NumArgs(0)"

    def test_function_def_params(self):
        from repro.lang.python_frontend import parse_module
        from repro.core.transform import transform_statement

        module = parse_module("def f(a, b, c):\n    pass")
        root = transform_statement(module.statements[0]).root
        assert root.value == "NumArgs(3)"

    def test_nested_calls(self):
        root = transformed("f(g(x))").root
        values = [n.value for n in root.walk() if n.kind == "NumArgs"]
        assert sorted(values) == ["NumArgs(1)", "NumArgs(1)"]


class TestSubtokenSplit:
    def test_split_counts(self):
        root = transformed("self.assertTrue(x)").root
        assert find_values(root, "NumST(2)")  # assert + True
        assert find_values(root, "assert") and find_values(root, "True")

    def test_subtoken_meta(self):
        root = transformed("self.assertTrue(x)").root
        sub = next(n for n in root.walk() if n.value == "True")
        assert sub.meta["original"] == "assertTrue"
        assert sub.meta["st_index"] == 1

    def test_long_names_kept_whole(self):
        config = TransformConfig(max_subtokens=2)
        root = transformed("a_b_c_d = 1", config=config).root
        assert find_values(root, "a_b_c_d")


class TestOrigins:
    def test_object_origin_inserted(self):
        root = transformed("self.run()", origins={"self": "TestCase"}).root
        origin_nodes = [n for n in root.walk() if n.kind == "Origin"]
        assert origin_nodes and origin_nodes[0].value == "TestCase"

    def test_receiver_origin_decorates_callee(self):
        root = transformed(
            "self.assertTrue(picture.rotate_angle, 90)", origins={"self": "TestCase"}
        ).root
        decorated = {
            n.children[0].value for n in root.walk() if n.kind == "Origin"
        }
        assert {"self", "assert", "True"} <= decorated

    def test_argument_receiver_not_decorated(self):
        root = transformed(
            "self.assertTrue(picture.rotate_angle, 90)", origins={"self": "TestCase"}
        ).root
        decorated = {
            n.children[0].value for n in root.walk() if n.kind == "Origin"
        }
        assert "rotate" not in decorated

    def test_disabled_by_config(self):
        config = TransformConfig(use_origins=False)
        root = transformed("self.run()", origins={"self": "TestCase"}, config=config).root
        assert not [n for n in root.walk() if n.kind == "Origin"]

    def test_missing_origin_leaves_plain(self):
        root = transformed("other.run()", origins={"self": "TestCase"}).root
        assert not [n for n in root.walk() if n.kind == "Origin"]

    def test_figure2_paths(self):
        """The transformed statement yields exactly the Figure 2(d) paths."""
        from repro.core.namepath import extract_name_paths

        t = transformed(
            "self.assertTrue(picture.rotate_angle, 90)", origins={"self": "TestCase"}
        )
        rendered = [str(p) for p in extract_name_paths(t)]
        assert (
            "NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 TestCase 0 self"
            in rendered
        )
        assert (
            "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 True"
            in rendered
        )
        assert "NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM" in rendered


class TestIdempotentInput:
    def test_original_statement_untouched(self):
        stmt = parse_statement("self.assertTrue(x, 90)")
        before = stmt.root.structural_key()
        transform_statement(stmt, origins={"self": "TestCase"})
        assert stmt.root.structural_key() == before
