"""Differential suite: interned ID pipeline vs object-path pipeline.

:class:`PathInterner` replaces ``NamePath`` hashing in the mining and
detection hot loops with dense integer IDs assigned in first-occurrence
order.  Nothing about the *output* may differ from the object-path
code — frequency tables, FP-tree transactions, pattern supports, prune
counts, reports, quarantine records — for any worker count or cache
temperature.  ``PatternMiner(use_interner=False)`` and
``PatternMatcher(use_interner=False)`` keep the object pipeline alive
precisely so these tests can hold the two against each other byte for
byte, mirroring the automaton differential suite in
``tests/test_automaton.py``.
"""

from __future__ import annotations

import json
import pickle
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core.namer import Namer, NamerConfig
from repro.core.persistence import namer_to_document
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.mining.interner import (
    INTERNER_SCHEMA,
    PathInterner,
    ShardPathCounts,
    merge_shard_path_counts,
)
from repro.mining.matcher import (
    PatternMatcher,
    prefix_frequencies,
    prefix_frequencies_ids,
)
from repro.mining.miner import MiningConfig
from repro.resilience.faults import FAULTS, FaultPlan, FaultSpec
from repro.resilience.quarantine import Quarantine

SMALL = MiningConfig(min_pattern_support=8, min_path_frequency=4)


@pytest.fixture(scope="module")
def trained_namer():
    corpus = generate_python_corpus(
        GeneratorConfig(num_repos=8, issue_rate=0.15, seed=23)
    )
    namer = Namer(NamerConfig(mining=SMALL))
    namer.mine(corpus)
    violations = namer.all_violations()[:40]
    namer.train(violations, [i % 2 for i in range(len(violations))])
    return namer


@pytest.fixture(scope="module")
def statements(trained_namer):
    """(stmt, paths) pairs across the whole prepared corpus."""
    return [
        (ps.stmt, ps.paths)
        for pf in trained_namer.prepared
        for ps in pf.statements
    ]


@pytest.fixture(scope="module")
def path_lists(statements):
    return [paths for _, paths in statements]


@contextmanager
def object_pipeline():
    """Force the object-path backend: every miner and matcher built
    inside the block gets ``use_interner=False`` (the automaton stays
    on — this isolates the interned representation, not the trie)."""
    import repro.mining.matcher as matcher_mod
    import repro.mining.miner as miner_mod

    matcher_original = matcher_mod.PatternMatcher.__init__
    miner_original = miner_mod.PatternMiner.__init__

    def object_matcher(self, *args, **kwargs):
        kwargs["use_interner"] = False
        matcher_original(self, *args, **kwargs)

    def object_miner(self, *args, **kwargs):
        kwargs["use_interner"] = False
        miner_original(self, *args, **kwargs)

    matcher_mod.PatternMatcher.__init__ = object_matcher
    miner_mod.PatternMiner.__init__ = object_miner
    try:
        yield
    finally:
        matcher_mod.PatternMatcher.__init__ = matcher_original
        miner_mod.PatternMiner.__init__ = miner_original


def object_twin(matcher: PatternMatcher) -> PatternMatcher:
    """The object-scan matcher over the same patterns and rarity table."""
    return PatternMatcher(
        matcher.patterns,
        prefix_counts=matcher._corpus_counts,
        use_interner=False,
    )


def report_blob(groups) -> str:
    return json.dumps(
        [[r.to_json() for r in g] for g in groups], sort_keys=True
    )


class TestPathInterner:
    """The core table: first-occurrence IDs and derived lookup tables."""

    def test_first_occurrence_order(self, path_lists):
        interner, id_lists = PathInterner.build(path_lists)
        assert len(id_lists) == len(path_lists)
        # The n-th distinct path in stream order gets ID n.
        seen: dict = {}
        for paths in path_lists:
            for path in paths:
                if path not in seen:
                    seen[path] = len(seen)
        assert interner.paths == list(seen)
        assert all(
            interner.id_of(path) == pid for path, pid in seen.items()
        )
        # Round trip: every ID array resolves back to its input row.
        for paths, ids in zip(path_lists, id_lists):
            assert ids.dtype == np.int32
            assert [interner.resolve(int(i)) for i in ids] == list(paths)

    def test_build_matches_streaming_intern(self, path_lists):
        built, _ = PathInterner.build(path_lists)
        streamed = PathInterner()
        for paths in path_lists:
            for path in paths:
                streamed.intern(path)
        assert streamed.paths == built.paths
        assert len(streamed) == len(built)
        assert all(p in streamed for p in built.paths)

    def test_intern_capped(self, path_lists):
        flat = [p for paths in path_lists for p in paths]
        distinct: list = []
        for p in flat:
            if p not in distinct:
                distinct.append(p)
            if len(distinct) == 3:
                break
        interner = PathInterner(distinct[:2])
        # Known paths resolve under any cap; unknown past the cap -> -1.
        assert interner.intern_capped(distinct[0], 2) == 0
        assert interner.intern_capped(distinct[2], 2) == -1
        assert distinct[2] not in interner
        # Room left: the unknown path is admitted and memoized.
        assert interner.intern_capped(distinct[2], 3) == 2
        assert interner.intern_capped(distinct[2], 3) == 2

    def test_symbolic_table(self, path_lists):
        interner, _ = PathInterner.build(path_lists)
        concrete = len(interner)
        sym = interner.ensure_symbolic()
        assert len(sym) >= concrete
        for pid in range(concrete):
            path = interner.resolve(pid)
            expected = path if path.end is None else path.as_symbolic()
            assert interner.resolve(sym[pid]) == expected
        # Symbolic entries map to themselves.
        for pid in range(len(interner)):
            if interner.resolve(pid).end is None:
                assert interner.ensure_symbolic()[pid] == pid
        # Deterministic: a second interner over the same vocabulary
        # assigns identical symbolic IDs.
        twin = PathInterner(interner.paths[:concrete])
        assert twin.ensure_symbolic() == sym[:len(twin.ensure_symbolic())]
        assert twin.paths == interner.paths

    def test_sort_ranks_reproduce_legacy_sort(self, path_lists):
        interner, id_lists = PathInterner.build(path_lists)
        rank = interner.sort_ranks()
        checked = 0
        for paths, ids in zip(path_lists, id_lists):
            if len(paths) < 2:
                continue
            by_rank = sorted((int(i) for i in ids), key=rank.__getitem__)
            legacy = [interner.id_of(p) for p in sorted(paths)]
            assert by_rank == legacy
            checked += 1
        assert checked, "need multi-path statements to exercise sorting"

    def test_fold_and_name_ok_tables(self, path_lists):
        interner, _ = PathInterner.build(path_lists)
        interner.ensure_symbolic()
        fold = interner.fold_table()
        ok = interner.name_ok_table()
        assert len(fold) == len(interner) == len(ok)
        for a in range(len(interner)):
            pa = interner.resolve(a)
            assert ok[a] == (pa.end not in (None, "NUM", "STR", "BOOL"))
            if pa.end is None:
                assert fold[a] == -1
        # Fold IDs equal iff casefolded ends equal (concrete entries).
        concrete = [
            pid for pid in range(len(interner))
            if interner.resolve(pid).end is not None
        ]
        for a in concrete[:40]:
            for b in concrete[:40]:
                same = (
                    interner.resolve(a).end.casefold()
                    == interner.resolve(b).end.casefold()
                )
                assert (fold[a] == fold[b]) == same

    def test_pickle_ships_vocabulary_only(self, path_lists):
        interner, _ = PathInterner.build(path_lists)
        interner.ensure_symbolic()
        interner.sort_ranks()
        loaded = pickle.loads(pickle.dumps(interner))
        assert loaded.paths == interner.paths
        assert all(
            loaded.id_of(p) == interner.id_of(p) for p in interner.paths
        )
        # Derived tables rebuild identically on the other side.
        assert loaded.ensure_symbolic() == interner.ensure_symbolic()
        assert loaded.sort_ranks() == interner.sort_ranks()
        assert loaded.fold_table() == interner.fold_table()

    def test_schema_constant_is_int(self):
        assert isinstance(INTERNER_SCHEMA, int)


class TestShardMerge:
    """Vocabulary-carrying shard summaries remap to the flat build."""

    def test_merge_equals_flat_build(self, path_lists):
        flat_interner, id_lists = PathInterner.build(path_lists)
        flat_counts = np.bincount(
            np.concatenate(id_lists), minlength=len(flat_interner)
        )
        third = max(1, len(id_lists) // 3)
        shards = [
            id_lists[:third],
            id_lists[third : 2 * third],
            id_lists[2 * third :],
        ]
        summaries = [
            ShardPathCounts.from_id_arrays(shard, flat_interner)
            for shard in shards
        ]
        # Merging contiguous in-order summaries into a FRESH interner
        # reproduces the serial first-occurrence assignment exactly.
        fresh = PathInterner()
        merged = merge_shard_path_counts(summaries, fresh)
        assert fresh.paths == flat_interner.paths
        assert merged.tolist() == flat_counts.tolist()

    def test_merge_survives_pickle(self, path_lists):
        """Shard summaries cross the process boundary; the remap must
        not care."""
        interner, id_lists = PathInterner.build(path_lists)
        half = len(id_lists) // 2
        summaries = [
            ShardPathCounts.from_id_arrays(id_lists[:half], interner),
            ShardPathCounts.from_id_arrays(id_lists[half:], interner),
        ]
        shipped = [pickle.loads(pickle.dumps(s)) for s in summaries]
        assert shipped == summaries
        fresh_a, fresh_b = PathInterner(), PathInterner()
        assert merge_shard_path_counts(
            shipped, fresh_a
        ).tolist() == merge_shard_path_counts(summaries, fresh_b).tolist()
        assert fresh_a.paths == fresh_b.paths

    def test_empty_shard(self, path_lists):
        interner, id_lists = PathInterner.build(path_lists)
        empty = ShardPathCounts.from_id_arrays([], interner)
        assert empty.vocab == [] and empty.counts == []
        full = ShardPathCounts.from_id_arrays(id_lists, interner)
        fresh = PathInterner()
        merged = merge_shard_path_counts([empty, full, empty], fresh)
        assert fresh.paths == interner.paths
        assert merged.sum() == sum(len(row) for row in id_lists)


class TestFrequencyParity:
    """The vectorized prefix-frequency table vs the Counter walk."""

    def test_prefix_frequencies_ids_parity(self, path_lists):
        interner, id_lists = PathInterner.build(path_lists)
        interner.ensure_symbolic()
        got = prefix_frequencies_ids(id_lists, interner)
        expected = prefix_frequencies(path_lists)
        assert got == expected
        # First-seen key order is part of the merge/serialization
        # contract, not just the values.
        assert list(got) == list(expected)

    def test_empty_corpus(self):
        assert prefix_frequencies_ids([], PathInterner()) == {}


class TestMinedArtifactParity:
    """mine() end to end: interned default vs object pipeline."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_documents_identical(self, workers):
        corpus = generate_python_corpus(
            GeneratorConfig(num_repos=4, issue_rate=0.15, seed=11)
        )
        config = NamerConfig(
            mining=MiningConfig(min_pattern_support=6, min_path_frequency=4),
            workers=workers,
        )
        interned = Namer(config)
        interned.mine(corpus)
        doc = namer_to_document(interned)
        object_namer = Namer(config)
        with object_pipeline():
            object_namer.mine(corpus)
        object_doc = namer_to_document(object_namer)
        doc.pop("phase_timings", None)
        object_doc.pop("phase_timings", None)
        assert json.dumps(doc, sort_keys=True) == json.dumps(
            object_doc, sort_keys=True
        )


class TestDifferentialDetect:
    """Detection through pre-resolved IDs vs per-path object scans."""

    def test_relations_parity(self, trained_namer, statements):
        interned = trained_namer.matcher
        assert interned._automaton is not None
        assert interned._automaton._interner is not None
        twin = object_twin(interned)
        assert twin._automaton._interner is None
        assert twin.prepare_ids(statements[0][1]) is None
        matched = 0
        for stmt, paths in statements:
            ids = interned.prepare_ids(paths)
            assert ids is not None
            rel = interned.relations(paths, ids)
            assert rel == twin.relations(paths)
            # The auto-resolving route (no ids passed) agrees too.
            assert interned.relations(paths) == rel
            matched += len(rel)
            assert interned.violations(stmt, paths, ids) == twin.violations(
                stmt, paths
            )
        assert matched, "corpus must exercise the matchers"

    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_byte_identical_reports(self, trained_namer, workers):
        namer = trained_namer
        interned = namer.matcher
        twin = object_twin(interned)
        try:
            namer.matcher = twin
            expected = report_blob(namer.detect_many(namer.prepared))
        finally:
            namer.matcher = interned
        got = report_blob(namer.detect_many(namer.prepared, workers=workers))
        assert got == expected

    @pytest.mark.parametrize("workers", [1, 2])
    def test_quarantine_parity_under_faults(self, trained_namer, workers):
        plan = FaultPlan(
            [
                FaultSpec(site="core.detect", rate=0.4),
                FaultSpec(site="core.featurize", rate=0.3),
            ],
            seed=5,
        )
        namer = trained_namer
        interned = namer.matcher

        def run():
            with FAULTS.armed(plan):
                quarantine = Quarantine()
                groups = namer.detect_many(
                    namer.prepared, quarantine=quarantine, workers=workers
                )
            return report_blob(groups), [
                (r.path, r.stage, r.kind, r.repo) for r in quarantine.records
            ]

        try:
            namer.matcher = object_twin(interned)
            expected_blob, expected_records = run()
        finally:
            namer.matcher = interned
        got_blob, got_records = run()
        assert expected_records, "plan must actually trip to prove parity"
        assert got_records == expected_records
        assert got_blob == expected_blob

    def test_pickle_keeps_interner_drops_tables(self, trained_namer):
        """A matcher crossing the process boundary keeps its vocabulary
        (the interner travels) but rebuilds the scratch per-ID tables —
        the spawn-platform shipping path of the pooled prune/detect."""
        interned = trained_namer.matcher
        loaded = pickle.loads(pickle.dumps(interned))
        automaton = loaded._automaton
        assert automaton._interner is not None
        assert automaton._interner.paths == (
            interned._automaton._interner.paths
        )
        assert "_pid_node" not in automaton.__dict__
        for stmt, paths in [
            (ps.stmt, ps.paths)
            for pf in trained_namer.prepared[:4]
            for ps in pf.statements
        ]:
            ids = loaded.prepare_ids(paths)
            assert loaded.relations(paths, ids) == interned.relations(paths)
