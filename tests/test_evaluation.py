"""Tests for the evaluation harnesses (oracle, precision, breakdown,
user study, feature weights, model selection, examples, speed)."""

import random

import pytest

from repro.core.patterns import PatternKind
from repro.corpus.model import IssueCategory
from repro.evaluation.breakdown import report_share_by_kind, run_breakdown
from repro.evaluation.cross_validation import run_model_selection
from repro.evaluation.examples import collect_example_reports, figure2_walkthrough
from repro.evaluation.feature_weights import extract_feature_weights
from repro.evaluation.oracle import Oracle
from repro.evaluation.precision import (
    PrecisionRow,
    run_precision_evaluation,
    sample_balanced_training,
)
from repro.evaluation.speed import measure_analysis_speed
from repro.evaluation.user_study import STUDY_ISSUES, simulate_user_study


class TestOracle:
    def test_labels_injected_issue(self, small_corpus, fitted_namer, small_oracle):
        violations = fitted_namer.all_violations()
        labels = [small_oracle.label(v) for v in violations]
        assert 0 < sum(labels) < len(labels)

    def test_inspection_categories(self, fitted_namer, small_oracle):
        for violation in fitted_namer.all_violations():
            outcome = small_oracle.inspect(violation)
            if outcome.is_true_issue:
                assert outcome.category is not None
                assert outcome.truth is not None
            else:
                assert outcome.category is None

    def test_inspect_location_exact(self, small_corpus, small_oracle):
        issue = small_corpus.ground_truth[0]
        outcome = small_oracle.inspect_location(
            issue.file_path, issue.line, {issue.observed}
        )
        assert outcome.is_true_issue

    def test_inspect_location_miss(self, small_oracle):
        assert not small_oracle.inspect_location("nope.py", 1, {"x"}).is_true_issue

    def test_proximity_requires_same_name(self, small_corpus, small_oracle):
        issue = small_corpus.ground_truth[0]
        outcome = small_oracle.inspect_location(
            issue.file_path, issue.line + 2, {"совершенно-unrelated"}
        )
        assert not outcome.is_true_issue


class TestPrecisionRow:
    def test_precision_math(self):
        row = PrecisionRow("x", reports=10, semantic_defects=2,
                           code_quality_issues=5, false_positives=3)
        assert row.precision == 0.7

    def test_zero_reports(self):
        row = PrecisionRow("x", 0, 0, 0, 0)
        assert row.precision == 0.0

    def test_format(self):
        row = PrecisionRow("Namer", 10, 2, 5, 3)
        assert "70%" in row.format()


class TestBalancedTraining:
    def test_respects_half_cap(self, fitted_namer, small_oracle):
        violations = fitted_namer.all_violations()
        rng = random.Random(0)
        chosen, labels = sample_balanced_training(violations, small_oracle, 40, rng)
        positives = [v for v in violations if small_oracle.label(v) == 1]
        assert sum(labels) <= len(positives) // 2 + 1
        assert len(chosen) == len(labels)


class TestPrecisionEvaluation:
    @pytest.fixture(scope="class")
    def result(self, small_corpus):
        from repro.core.namer import NamerConfig
        from tests.conftest import SMALL_MINING

        return run_precision_evaluation(
            small_corpus,
            NamerConfig(mining=SMALL_MINING),
            sample_size=80,
            training_size=40,
            seed=3,
        )

    def test_four_rows(self, result):
        assert [r.name for r in result.rows] == [
            "Namer", "w/o C", "w/o A", "w/o C & A",
        ]

    def test_classifier_reduces_report_count(self, result):
        # "w/o C" reports every sampled violation; the classifier filters.
        assert result.row("Namer").reports <= result.row("w/o C").reports

    def test_precisions_are_probabilities(self, result):
        # The precision *ordering* (Namer > w/o C > ...) is a corpus-scale
        # property checked by the Table 2 benchmark; at this tiny test
        # scale only structural invariants are stable.
        for row in result.rows:
            assert 0.0 <= row.precision <= 1.0
            assert (
                row.semantic_defects + row.code_quality_issues + row.false_positives
                == row.reports
            )

    def test_namer_instance_returned(self, result):
        assert result.namer.matcher is not None

    def test_format_table(self, result):
        assert "Namer" in result.format_table()


class TestBreakdown:
    def test_breakdown_totals(self, fitted_namer, small_oracle):
        result = run_breakdown(fitted_namer, small_oracle, per_type=30)
        for kind in PatternKind:
            row = result[kind]
            assert (
                row.semantic_defects + row.code_quality_issues + row.false_positives
                == row.inspected
            )

    def test_quality_categories_counted(self, fitted_namer, small_oracle):
        result = run_breakdown(fitted_namer, small_oracle, per_type=50)
        total_categorized = sum(
            sum(row.quality_categories.values()) for row in result.values()
        )
        total_quality = sum(row.code_quality_issues for row in result.values())
        assert total_categorized == total_quality

    def test_report_share(self, fitted_namer):
        shares = report_share_by_kind(fitted_namer)
        assert set(shares) == {"consistency", "confusing_word", "both"}
        assert all(0.0 <= v <= 1.0 for v in shares.values())

    def test_format(self, fitted_namer, small_oracle):
        result = run_breakdown(fitted_namer, small_oracle, per_type=10)
        text = result[PatternKind.CONSISTENCY].format()
        assert "semantic defects" in text


class TestUserStudy:
    def test_participant_totals(self):
        rows = simulate_user_study(participants=7, seed=1)
        for row in rows.values():
            assert (
                row.not_accepted + row.ide_plugin + row.pull_request + row.manual_fix
                == 7
            )

    def test_five_categories(self):
        rows = simulate_user_study()
        assert len(rows) == 5
        assert set(rows) == set(STUDY_ISSUES)

    def test_deterministic(self):
        a = simulate_user_study(seed=5)
        b = simulate_user_study(seed=5)
        assert all(
            a[c].manual_fix == b[c].manual_fix for c in a
        )

    def test_most_issues_accepted(self):
        """The paper's headline: only 5 of 35 responses rejected."""
        rows = simulate_user_study(participants=7, seed=1)
        accepted = sum(r.accepted for r in rows.values())
        rejected = sum(r.not_accepted for r in rows.values())
        assert accepted > rejected * 3

    def test_format(self):
        rows = simulate_user_study()
        text = rows[IssueCategory.TYPO].format()
        assert "typo" in text


class TestFeatureWeights:
    def test_weights_table(self, fitted_namer):
        table = extract_feature_weights(fitted_namer)
        assert set(table.rows) == {
            "identical statement", "satisfaction count", "violation count",
        }
        # identical statement has no dataset-level feature
        assert table.rows["identical statement"][2] is None

    def test_all_17_weights_present(self, fitted_namer):
        table = extract_feature_weights(fitted_namer)
        assert len(table.all_weights) == 17

    def test_format(self, fitted_namer):
        text = extract_feature_weights(fitted_namer).format()
        assert "violation count" in text

    def test_untrained_raises(self, small_corpus):
        from repro.core.namer import Namer

        with pytest.raises(RuntimeError):
            extract_feature_weights(Namer())


class TestModelSelection:
    def test_runs_all_candidates(self, fitted_namer, small_oracle):
        result = run_model_selection(fitted_namer, small_oracle, repeats=5)
        assert set(result.per_model) == {"svm", "logistic regression", "lda"}
        assert result.selected in result.per_model

    def test_reasonable_accuracy(self, fitted_namer, small_oracle):
        result = run_model_selection(fitted_namer, small_oracle, repeats=5)
        assert result.per_model[result.selected].mean_accuracy > 0.6

    def test_format(self, fitted_namer, small_oracle):
        result = run_model_selection(fitted_namer, small_oracle, repeats=3)
        assert "selected" in result.format()


class TestExamples:
    def test_figure2_walkthrough(self):
        result = figure2_walkthrough()
        assert "assertTrue" in result["parsed_ast"]
        assert "TestCase" in result["transformed_ast"]
        assert any("NumArgs(2)" in p for p in result["name_paths"])

    def test_collect_example_reports(self, fitted_namer, small_oracle):
        table = collect_example_reports(fitted_namer, small_oracle, per_section=2)
        assert table.semantic_defects or table.code_quality_issues
        text = table.format()
        assert "Semantic defects" in text


class TestSpeed:
    def test_measures(self, small_corpus):
        report = measure_analysis_speed(small_corpus, max_files=5)
        assert report.files == 5
        assert report.ms_per_file > 0
        assert "ms/file" in str(report)
