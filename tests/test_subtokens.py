"""Unit and property tests for subtoken splitting."""

import pytest
from hypothesis import given, strategies as st

from repro.naming.subtokens import (
    is_splittable,
    join_subtokens,
    normalize_style,
    split_identifier,
)


class TestSplitIdentifier:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("assertTrue", ["assert", "True"]),
            ("rotate_angle", ["rotate", "angle"]),
            ("HTTPServer", ["HTTP", "Server"]),
            ("HTTPServer2x", ["HTTP", "Server", "2", "x"]),
            ("__init__", ["init"]),
            ("snake_case_name", ["snake", "case", "name"]),
            ("PascalCase", ["Pascal", "Case"]),
            ("SCREAMING_SNAKE", ["SCREAMING", "SNAKE"]),
            ("x", ["x"]),
            ("sha256sum", ["sha", "256", "sum"]),
            ("value2", ["value", "2"]),
            ("_private", ["private"]),
        ],
    )
    def test_cases(self, name, expected):
        assert split_identifier(name) == expected

    def test_empty(self):
        assert split_identifier("") == []

    def test_is_splittable(self):
        assert is_splittable("assertTrue")
        assert not is_splittable("self")

    @given(st.from_regex(r"[a-z]{1,8}(_[a-z]{1,8}){0,3}", fullmatch=True))
    def test_snake_roundtrip(self, name):
        parts = split_identifier(name)
        assert join_subtokens(parts, "snake") == name

    @given(st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,20}", fullmatch=True))
    def test_split_never_empty_tokens(self, name):
        for token in split_identifier(name):
            assert token


class TestJoinSubtokens:
    def test_snake(self):
        assert join_subtokens(["rotate", "Angle"], "snake") == "rotate_angle"

    def test_camel(self):
        assert join_subtokens(["assert", "equal"], "camel") == "assertEqual"

    def test_pascal(self):
        assert join_subtokens(["http", "server"], "pascal") == "HttpServer"

    def test_pascal_keeps_acronyms(self):
        assert join_subtokens(["HTTP", "server"], "pascal") == "HTTPServer"

    def test_empty(self):
        assert join_subtokens([], "snake") == ""

    def test_unknown_style(self):
        with pytest.raises(ValueError):
            join_subtokens(["a"], "kebab")


class TestNormalizeStyle:
    @pytest.mark.parametrize(
        "name, style",
        [
            ("rotate_angle", "snake"),
            ("assertTrue", "camel"),
            ("TestCase", "pascal"),
            ("lower", "snake"),
        ],
    )
    def test_cases(self, name, style):
        assert normalize_style(name) == style

    def test_camel_roundtrip_through_style(self):
        name = "assertTrue"
        parts = split_identifier(name)
        assert join_subtokens(parts, normalize_style(name)) == name
