"""Tests for the 17-feature extractor and the statistics index."""

import numpy as np

from repro.core.features import FEATURE_NAMES, NUM_FEATURES, extract_features
from repro.core.namepath import extract_name_paths
from repro.core.patterns import PatternKind
from repro.core.stats_index import StatsIndex
from repro.core.transform import transform_statement
from repro.lang.python_frontend import parse_statement
from repro.mining.confusing_pairs import ConfusingPairStore
from repro.mining.matcher import PatternMatcher
from repro.mining.miner import MiningConfig, PatternMiner


def build_world():
    """A small idiom corpus plus one violating statement, with stats."""
    stmts = []
    names = ["user", "record", "packet", "widget", "frame"]
    for i, name in enumerate(names * 8):
        stmt = transform_statement(
            parse_statement(f"self.assertEqual({name}.size, {i})"),
            origins={"self": "TestCase"},
        )
        stmt.file_path, stmt.repo = f"r/f{i % 4}.py", "r"
        stmts.append(stmt)
    bug = transform_statement(
        parse_statement("self.assertTrue(picture.rotate_angle, 90)"),
        origins={"self": "TestCase"},
    )
    bug.file_path, bug.repo = "r/f0.py", "r"
    stmts.append(bug)

    miner = PatternMiner(
        MiningConfig(min_pattern_support=10, min_path_frequency=5),
        confusing_pairs=[("True", "Equal")],
    )
    patterns = miner.mine(stmts, PatternKind.CONFUSING_WORD).patterns
    matcher = PatternMatcher(patterns)
    stats = StatsIndex.build(
        matcher, ((s, extract_name_paths(s, max_paths=10)) for s in stmts)
    )
    paths = extract_name_paths(bug, max_paths=10)
    violations = matcher.violations(bug, paths)
    return stmts, matcher, stats, violations, paths


class TestStatsIndex:
    def test_total_statements(self):
        stmts, _, stats, _, _ = build_world()
        assert stats.total_statements == len(stmts)

    def test_identical_statement_counts(self):
        stmts, matcher, stats, violations, _ = build_world()
        bug = violations[0].statement
        assert stats.identical_statements(bug, "file") == 1
        assert stats.identical_statements(bug, "repo") == 1

    def test_satisfaction_rate_dataset_high(self):
        _, _, stats, violations, _ = build_world()
        pattern = violations[0].pattern
        stmt = violations[0].statement
        assert stats.satisfaction_rate(pattern, stmt, "dataset") > 0.8

    def test_violation_count_dataset(self):
        _, _, stats, violations, _ = build_world()
        pattern = violations[0].pattern
        stmt = violations[0].statement
        assert stats.violation_count(pattern, stmt, "dataset") >= 1

    def test_match_equals_sat_plus_viol(self):
        _, _, stats, violations, _ = build_world()
        pattern = violations[0].pattern
        stmt = violations[0].statement
        for level in ("file", "repo", "dataset"):
            assert stats.match_count(pattern, stmt, level) == stats.satisfaction_count(
                pattern, stmt, level
            ) + stats.violation_count(pattern, stmt, level)

    def test_zero_for_unseen_scope(self):
        _, _, stats, violations, _ = build_world()
        stmt = violations[0].statement
        other = transform_statement(parse_statement("x = 1"))
        other.file_path, other.repo = "other/f.py", "other"
        assert stats.identical_statements(other, "file") == 0


class TestExtractFeatures:
    def test_vector_shape_and_names(self):
        assert NUM_FEATURES == 17 == len(FEATURE_NAMES)
        _, _, stats, violations, paths = build_world()
        vec = extract_features(violations[0], paths, stats, ConfusingPairStore())
        assert vec.shape == (17,)
        assert np.isfinite(vec).all()

    def test_num_paths_feature(self):
        _, _, stats, violations, paths = build_world()
        vec = extract_features(violations[0], paths, stats, ConfusingPairStore())
        assert vec[0] == len(paths)

    def test_confusing_pair_feature(self):
        _, _, stats, violations, paths = build_world()
        store = ConfusingPairStore()
        store.add("True", "Equal")
        with_pair = extract_features(violations[0], paths, stats, store)
        without = extract_features(violations[0], paths, stats, ConfusingPairStore())
        assert with_pair[16] == 1.0 and without[16] == 0.0

    def test_edit_distance_feature(self):
        _, _, stats, violations, paths = build_world()
        vec = extract_features(violations[0], paths, stats, ConfusingPairStore())
        assert vec[15] == 4.0  # True -> Equal

    def test_function_name_feature(self):
        _, _, stats, violations, paths = build_world()
        vec = extract_features(violations[0], paths, stats, ConfusingPairStore())
        assert vec[12] == 1.0  # assert pattern targets a function name

    def test_match_ratio_in_unit_interval(self):
        _, _, stats, violations, paths = build_world()
        vec = extract_features(violations[0], paths, stats, ConfusingPairStore())
        assert 0.0 <= vec[14] <= 1.0 + 1e-9
