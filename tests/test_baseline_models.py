"""Tests for the GGNN and GREAT baselines and their trainer."""

import numpy as np
import pytest

from repro.baselines.ggnn import GGNNModel
from repro.baselines.graphs import Vocabulary
from repro.baselines.great import GreatModel
from repro.baselines.training import (
    TrainConfig,
    detect_real_issues,
    evaluate_synthetic,
    train_model,
)
from repro.baselines.varmisuse import build_dataset, corpus_graphs
from repro.corpus.generator import GeneratorConfig, generate_python_corpus


@pytest.fixture(scope="module")
def world():
    corpus = generate_python_corpus(GeneratorConfig(num_repos=4, seed=13))
    graphs = corpus_graphs(corpus)
    vocab = Vocabulary.build(graphs)
    samples = build_dataset(graphs, seed=2)
    return graphs, vocab, samples


@pytest.mark.parametrize("model_cls", [GGNNModel, GreatModel])
class TestModels:
    def test_logits_shape(self, world, model_cls):
        _, vocab, samples = world
        model = model_cls(vocab, dim=16)
        sample = samples[0]
        logits = model.logits(sample)
        assert logits.shape == (len(sample.candidates),)

    def test_probs_normalized(self, world, model_cls):
        _, vocab, samples = world
        model = model_cls(vocab, dim=16)
        probs = model.predict_probs(samples[0])
        assert np.isclose(probs.sum(), 1.0)

    def test_loss_positive_and_differentiable(self, world, model_cls):
        _, vocab, samples = world
        model = model_cls(vocab, dim=16)
        loss = model.loss(samples[0])
        assert float(loss.data) > 0
        loss.backward()
        assert model.embedding.weight.grad is not None

    def test_training_reduces_loss(self, world, model_cls):
        _, vocab, samples = world
        model = model_cls(vocab, dim=16)
        history = train_model(model, samples[:60], TrainConfig(epochs=3, lr=5e-3))
        assert history[-1] < history[0]

    def test_parameters_nonempty(self, world, model_cls):
        _, vocab, _ = world
        assert model_cls(vocab, dim=16).parameters()


class TestEvaluation:
    def test_synthetic_metrics_bounds(self, world):
        _, vocab, samples = world
        model = GGNNModel(vocab, dim=16)
        train_model(model, samples[:60], TrainConfig(epochs=2))
        metrics = evaluate_synthetic(model, samples[60:90])
        for value in (metrics.classification, metrics.localization, metrics.repair):
            assert 0.0 <= value <= 1.0

    def test_trained_beats_chance_on_repair(self, world):
        _, vocab, samples = world
        model = GGNNModel(vocab, dim=16)
        train_model(model, samples[:120], TrainConfig(epochs=3, lr=5e-3))
        metrics = evaluate_synthetic(model, samples[120:170])
        assert metrics.repair > 0.4

    def test_detect_real_issues_budget(self, world):
        graphs, vocab, samples = world
        model = GGNNModel(vocab, dim=16)
        train_model(model, samples[:60], TrainConfig(epochs=1))
        reports = detect_real_issues(model, graphs[:30], target_reports=5)
        assert len(reports) <= 5
        for report in reports:
            assert report.observed != report.suggested
            assert report.confidence >= 0

    def test_reports_sorted_by_confidence(self, world):
        graphs, vocab, samples = world
        model = GGNNModel(vocab, dim=16)
        train_model(model, samples[:40], TrainConfig(epochs=1))
        reports = detect_real_issues(model, graphs[:30], target_reports=10)
        confidences = [r.confidence for r in reports]
        assert confidences == sorted(confidences, reverse=True)
