"""Tests for the persistent repository index (`repro.index`).

Covers the store (schema, migrations, transactions), the ignore-spec
walker, the refresh/watch machinery (including the race windows a real
deployment hits: files deleted mid-cycle, renames, unreadable files
that later heal), the index-backed serving tier, and the CLI commands.
"""

from __future__ import annotations

import json
import os
import sqlite3
import urllib.error
import urllib.request

import pytest

from repro.__main__ import main
from repro.core.persistence import load_namer, save_namer
from repro.index import (
    INDEX_SCHEMA_VERSION,
    FileRecord,
    IgnoreSpec,
    IndexSchemaError,
    RepoIndex,
    RepoIndexer,
    namer_fingerprint,
    walk_repository,
    watch_repository,
)
from repro.service.engine import AnalysisEngine, IndexNotAttached

pytestmark = pytest.mark.index


# ----------------------------------------------------------------------
# Shared fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus_sources(fitted_namer, small_corpus):
    """A handful of parseable corpus sources, at least one of which the
    fitted namer reports on (so index rows have content to assert)."""
    from repro.core.prepare import prepare_file

    reporting, silent = [], []
    for repo, source in small_corpus.files():
        prepared = prepare_file(source, repo=repo.name)
        if prepared is None:
            continue
        (reporting if fitted_namer.detect(prepared) else silent).append(
            source.source
        )
        if len(reporting) >= 2 and len(silent) >= 4:
            break
    if not reporting:
        pytest.fail("no corpus file produced a report")
    return reporting, silent


@pytest.fixture()
def project(tmp_path, corpus_sources):
    """A small on-disk repository: six modules, one with reports."""
    reporting, silent = corpus_sources
    root = tmp_path / "proj"
    (root / "pkg").mkdir(parents=True)
    (root / "pkg" / "hot.py").write_text(reporting[0])
    for i, source in enumerate((silent + reporting)[:5]):
        (root / "pkg" / f"mod_{i}.py").write_text(source)
    return root


@pytest.fixture()
def indexer(project, fitted_namer, tmp_path):
    store = RepoIndex(tmp_path / "index.db")
    indexer = RepoIndexer(str(project), fitted_namer, store)
    yield indexer
    store.close()


@pytest.fixture(scope="module")
def artifact_file(fitted_namer, tmp_path_factory):
    path = tmp_path_factory.mktemp("index-artifacts") / "namer.json"
    save_namer(fitted_namer, path)
    return path


# ----------------------------------------------------------------------
# Walker + ignore specs
# ----------------------------------------------------------------------


class TestIgnoreSpec:
    def test_basename_pattern_matches_any_depth(self):
        spec = IgnoreSpec(["*.pyc"])
        assert spec.match("a.pyc", is_dir=False) is True
        assert spec.match("deep/nested/b.pyc", is_dir=False) is True
        assert spec.match("a.py", is_dir=False) is None

    def test_anchored_pattern_matches_full_path(self):
        spec = IgnoreSpec(["build/out.py"])
        assert spec.match("build/out.py", is_dir=False) is True
        assert spec.match("other/build/out.py", is_dir=False) is None

    def test_negation_last_match_wins(self):
        spec = IgnoreSpec(["*.py", "!keep.py"])
        assert spec.match("drop.py", is_dir=False) is True
        assert spec.match("keep.py", is_dir=False) is False

    def test_dir_only_pattern(self):
        spec = IgnoreSpec(["cache/"])
        assert spec.match("cache", is_dir=True) is True
        assert spec.match("cache", is_dir=False) is None

    def test_double_star_crosses_segments(self):
        spec = IgnoreSpec(["vendor/**"])
        assert spec.match("vendor/a/b/c.py", is_dir=False) is True
        assert spec.match("vendored/x.py", is_dir=False) is None

    def test_comments_and_blanks_skipped(self):
        spec = IgnoreSpec(["# comment", "", "real.py"])
        assert len(spec.rules) == 1


class TestWalker:
    def test_walk_finds_sources_sorted(self, project):
        walked = walk_repository(project)
        paths = [wf.path for wf in walked]
        assert paths == sorted(paths)
        assert "pkg/hot.py" in paths
        assert all(wf.language == "python" for wf in walked)
        assert all(wf.size > 0 and wf.mtime > 0 for wf in walked)

    def test_gitignore_and_defaults_respected(self, project):
        (project / ".gitignore").write_text("ignored/\n*.tmp.py\n")
        (project / "ignored").mkdir()
        (project / "ignored" / "x.py").write_text("a = 1\n")
        (project / "pkg" / "scratch.tmp.py").write_text("b = 2\n")
        (project / "__pycache__").mkdir()
        (project / "__pycache__" / "c.py").write_text("c = 3\n")
        (project / ".repro-index.db").write_text("not a real db")
        walked = {wf.path for wf in walk_repository(project)}
        assert "ignored/x.py" not in walked
        assert "pkg/scratch.tmp.py" not in walked
        assert "__pycache__/c.py" not in walked
        assert "pkg/hot.py" in walked

    def test_nested_gitignore_anchors_at_its_directory(self, project):
        (project / "pkg" / ".gitignore").write_text("local.py\n")
        (project / "pkg" / "local.py").write_text("x = 1\n")
        (project / "local.py").write_text("y = 2\n")
        walked = {wf.path for wf in walk_repository(project)}
        assert "pkg/local.py" not in walked
        assert "local.py" in walked

    def test_extra_patterns(self, project):
        walked = {
            wf.path
            for wf in walk_repository(project, extra_patterns=["hot.py"])
        }
        assert "pkg/hot.py" not in walked


# ----------------------------------------------------------------------
# Store: schema, transactions, migrations
# ----------------------------------------------------------------------


def _record(path="a.py", **kw) -> FileRecord:
    defaults = dict(
        path=path,
        sha256="f" * 64,
        mtime=1.0,
        size=10,
        language="python",
        fingerprint="fp-1",
        reports=[{"file": path, "line": 1}],
        analyzed_at=2.0,
    )
    defaults.update(kw)
    return FileRecord(**defaults)


class TestRepoIndex:
    def test_roundtrip(self, tmp_path):
        with RepoIndex(tmp_path / "i.db") as store:
            store.upsert(_record("a.py"))
            got = store.get("a.py")
            assert got is not None
            assert got.reports == [{"file": "a.py", "line": 1}]
            assert got.clean
            assert store.get("missing.py") is None
            assert len(store) == 1

    def test_upsert_replaces(self, tmp_path):
        with RepoIndex(tmp_path / "i.db") as store:
            store.upsert(_record("a.py"))
            store.upsert(_record("a.py", sha256="e" * 64, reports=[]))
            got = store.get("a.py")
            assert got.sha256 == "e" * 64
            assert got.reports == []
            assert len(store) == 1

    def test_transaction_rolls_back_on_error(self, tmp_path):
        with RepoIndex(tmp_path / "i.db") as store:
            store.upsert(_record("keep.py"))
            with pytest.raises(RuntimeError, match="boom"):
                with store.transaction() as conn:
                    conn.execute("DELETE FROM files")
                    raise RuntimeError("boom")
            assert store.get("keep.py") is not None

    def test_remove_many_and_paths(self, tmp_path):
        with RepoIndex(tmp_path / "i.db") as store:
            store.upsert_many([_record("a.py"), _record("b.py"), _record("c.py")])
            assert store.paths() == ["a.py", "b.py", "c.py"]
            assert store.remove_many(["a.py", "c.py", "ghost.py"]) == 2
            assert store.paths() == ["b.py"]

    def test_meta_and_schema_version(self, tmp_path):
        with RepoIndex(tmp_path / "i.db") as store:
            assert store.schema_version == INDEX_SCHEMA_VERSION
            store.set_meta("root", "/somewhere")
            store.set_meta("root", "/elsewhere")
            assert store.get_meta("root") == "/elsewhere"
            assert store.get_meta("nope", "fallback") == "fallback"

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "i.db"
        with RepoIndex(path) as store:
            store.upsert(_record("a.py"))
        with RepoIndex(path) as store:
            assert store.get("a.py") is not None

    def test_summary_and_views(self, tmp_path):
        with RepoIndex(tmp_path / "i.db") as store:
            store.upsert_many(
                [
                    _record("a.py", fingerprint="fp-1"),
                    _record("b.py", fingerprint="fp-2", reports=[]),
                    _record(
                        "c.py", reports=[], error="read: boom", stage="read",
                        sha256="",
                    ),
                ]
            )
            summary = store.summary()
            assert summary["files"] == 3
            assert summary["files_with_reports"] == 1
            assert summary["report_rows"] == 1
            assert summary["quarantined"] == 1
            assert summary["artifact_fingerprints"] == 2
            assert store.stale_paths("fp-1") == ["b.py"]
            assert store.error_paths() == ["c.py"]
            doctor = store.doctor("fp-1")
            assert doctor["stale"] == ["b.py"]
            assert doctor["quarantined"] == ["c.py"]
            assert doctor["unhashed"] == ["c.py"]
            assert doctor["issues"] == 3
            # without a fingerprint staleness cannot be judged
            assert store.doctor()["stale"] is None

    def test_export_document(self, tmp_path):
        with RepoIndex(tmp_path / "i.db") as store:
            store.set_meta("root", "/proj")
            store.upsert(_record("a.py"))
            doc = store.export()
        assert doc["schema_version"] == INDEX_SCHEMA_VERSION
        assert doc["root"] == "/proj"
        assert [f["path"] for f in doc["files"]] == ["a.py"]
        json.dumps(doc)  # must be one serializable document

    def test_v1_database_migrates_forward_on_open(self, tmp_path):
        path = tmp_path / "old.db"
        RepoIndex.create_v1(path)
        # a pre-migration row, inserted with the v1 column set
        conn = sqlite3.connect(path)
        conn.execute(
            "INSERT INTO files"
            " (path, sha256, mtime, size, language, fingerprint, reports,"
            "  analyzed_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            ("old.py", "a" * 64, 1.0, 5, "python", "fp-0", "[]", 2.0),
        )
        conn.commit()
        conn.close()
        with RepoIndex(path) as store:
            assert store.schema_version == INDEX_SCHEMA_VERSION
            got = store.get("old.py")
            assert got is not None and got.error is None
            # the migrated schema accepts quarantine rows
            store.upsert(_record("new.py", error="boom", stage="read"))
            assert store.error_paths() == ["new.py"]

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "future.db"
        RepoIndex(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value='99' WHERE key='schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(IndexSchemaError, match="newer"):
            RepoIndex(path)


# ----------------------------------------------------------------------
# Indexer: refresh cycles and their race windows
# ----------------------------------------------------------------------


class TestRepoIndexer:
    def test_initial_build_then_noop(self, indexer, project):
        delta = indexer.refresh()
        assert len(delta.added) == 6
        assert delta.report_rows >= 1
        assert not delta.changed and not delta.removed
        again = indexer.refresh()
        assert again.analyzed == []
        assert again.unchanged == 6

    def test_warm_reindex_reanalyzes_exactly_the_edited_files(
        self, indexer, project
    ):
        indexer.refresh()
        (project / "pkg" / "mod_0.py").write_text("changed = 1\n")
        (project / "pkg" / "mod_1.py").write_text("changed = 2\n")
        delta = indexer.refresh()
        assert delta.analyzed == ["pkg/mod_0.py", "pkg/mod_1.py"]
        assert delta.unchanged == 4

    def test_touched_but_identical_takes_hash_path_once(
        self, indexer, project
    ):
        indexer.refresh()
        target = project / "pkg" / "mod_0.py"
        os.utime(target, (1, 1))
        delta = indexer.refresh()
        assert delta.analyzed == []
        # the stat pair was refreshed, so the next cycle is a fast path
        record = indexer.store.get("pkg/mod_0.py")
        assert record.mtime == os.stat(target).st_mtime

    def test_rename_same_content_reanalyzes_under_new_path(
        self, indexer, project
    ):
        indexer.refresh()
        old_rows = indexer.store.get("pkg/hot.py").reports
        assert old_rows, "fixture file must produce reports"
        (project / "pkg" / "hot.py").rename(project / "pkg" / "renamed.py")
        delta = indexer.refresh()
        assert delta.added == ["pkg/renamed.py"]
        assert delta.removed == ["pkg/hot.py"]
        assert indexer.store.get("pkg/hot.py") is None
        new_rows = indexer.store.get("pkg/renamed.py").reports
        # report rows embed the path, so a rename must re-analyze —
        # same content, different rows
        assert all(row["file"] == "pkg/renamed.py" for row in new_rows)
        assert len(new_rows) == len(old_rows)

    def test_file_deleted_between_walk_and_analyze(self, indexer, project):
        indexer.refresh()
        # force the victim into the analyze set, then delete it after
        # the walk — the read hits FileNotFoundError mid-cycle
        victim = project / "pkg" / "mod_0.py"
        victim.write_text("mutated = True\n")
        stale_walk = walk_repository(project)
        victim.unlink()
        delta = indexer.refresh(walked=stale_walk)
        assert "pkg/mod_0.py" in delta.removed
        assert indexer.store.get("pkg/mod_0.py") is None
        assert "pkg/mod_0.py" not in delta.analyzed

    def test_unreadable_file_quarantined_then_repaired(
        self, indexer, project
    ):
        target = project / "pkg" / "mod_1.py"
        target.write_bytes(b"\xff\xfe not unicode \xff")
        delta = indexer.refresh()
        assert "pkg/mod_1.py" in delta.quarantined
        record = indexer.store.get("pkg/mod_1.py")
        assert record.error is not None and record.stage == "read"
        assert record.reports == []
        # repaired in place: the quarantined row never takes the stat
        # fast path, so the next cycle heals it
        target.write_text("healed = True\n")
        healed = indexer.refresh()
        assert "pkg/mod_1.py" in healed.analyzed
        record = indexer.store.get("pkg/mod_1.py")
        assert record.error is None and record.stage is None

    def test_unparsable_file_quarantined(self, indexer, project):
        (project / "pkg" / "broken.py").write_text("def broken(:\n")
        delta = indexer.refresh()
        assert "pkg/broken.py" in delta.quarantined
        record = indexer.store.get("pkg/broken.py")
        assert record.error is not None
        assert record.sha256 != ""  # content was readable, so hashed

    def test_stale_fingerprint_rows_are_refreshed(self, indexer, project):
        indexer.refresh()
        record = indexer.store.get("pkg/hot.py")
        record.fingerprint = "another-artifact"
        indexer.store.upsert(record)
        delta = indexer.refresh()
        assert delta.refreshed == ["pkg/hot.py"]
        assert indexer.store.get("pkg/hot.py").fingerprint == indexer.fingerprint

    def test_watch_loop_reports_each_cycle(self, indexer, project):
        lines = []
        deltas = watch_repository(
            indexer, interval=0.01, cycles=2, log=lines.append
        )
        assert len(deltas) == 2
        assert len(deltas[0].added) == 6
        assert deltas[1].unchanged == 6
        assert lines[0].startswith("[cycle 1]")
        assert lines[1].startswith("[cycle 2]")

    def test_fingerprint_recorded_in_meta(self, indexer, fitted_namer):
        indexer.refresh()
        assert indexer.store.get_meta("artifact_fingerprint") == (
            namer_fingerprint(fitted_namer)
        )
        assert indexer.store.get_meta("root") == str(indexer.root)


# ----------------------------------------------------------------------
# Serving tier
# ----------------------------------------------------------------------


def _http(url, body=None, method=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        url, data=data, method=method or ("POST" if data is not None else "GET")
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.mark.service
class TestIndexServing:
    def test_endpoints_without_index_answer_400(self, fitted_namer):
        engine = AnalysisEngine(namer=fitted_namer, workers=1)
        try:
            with pytest.raises(IndexNotAttached):
                engine.index_summary()
            with pytest.raises(IndexNotAttached):
                engine.index_file("a.py")
            with pytest.raises(IndexNotAttached):
                engine.index_refresh()
        finally:
            engine.shutdown(drain=False, timeout=5)

    def test_refresh_requires_recorded_root(self, fitted_namer, tmp_path):
        RepoIndex(tmp_path / "rootless.db").close()
        engine = AnalysisEngine(
            namer=fitted_namer, workers=1,
            index_path=str(tmp_path / "rootless.db"),
        )
        try:
            with pytest.raises(ValueError, match="no recorded root"):
                engine.index_refresh()
        finally:
            engine.shutdown(drain=False, timeout=5)

    def test_index_backed_serving_round_trip(
        self, artifact_file, project, tmp_path
    ):
        from repro.service.server import serve

        db = tmp_path / "serving.db"
        namer = load_namer(artifact_file)
        with RepoIndex(db) as store:
            RepoIndexer(str(project), namer, store).refresh()

        server = serve(
            str(artifact_file), port=0, index_path=str(db), quiet=True
        ).start()
        base = server.url
        try:
            status, summary = _http(f"{base}/index/summary")
            assert status == 200
            assert summary["files"] == 6
            assert summary["stale_rows"] == 0
            assert summary["artifact_fingerprint"]

            status, body = _http(f"{base}/index/file?path=pkg/hot.py")
            assert status == 200
            assert body["reports"] and not body["stale"]

            # byte-identity: the indexed rows ARE the fresh-analysis rows
            source = (project / "pkg" / "hot.py").read_text()
            status, fresh = _http(
                f"{base}/analyze",
                {
                    "source": source,
                    "path": "pkg/hot.py",
                    "repo": project.name,
                    "language": "python",
                },
            )
            assert status == 200
            assert json.dumps(body["reports"], separators=(",", ":")) == (
                json.dumps(fresh["reports"], separators=(",", ":"))
            )

            status, missing = _http(f"{base}/index/file?path=ghost.py")
            assert status == 404 and "not indexed" in missing["error"]
            status, noparam = _http(f"{base}/index/file")
            assert status == 400

            # a refresh over the wire re-analyzes exactly the edit
            (project / "pkg" / "mod_2.py").write_text("served_edit = 1\n")
            status, delta = _http(f"{base}/index/refresh", method="POST")
            assert status == 200
            assert delta["changed"] == ["pkg/mod_2.py"]
            assert delta["unchanged"] == 5

            status, metrics = _http(f"{base}/metrics")
            assert metrics["index"]["hits"] == 1
            assert metrics["index"]["misses"] == 1
            assert metrics["index"]["refreshes"] == 1
            assert metrics["index"]["rows"] == 6

            status, health = _http(f"{base}/health")
            assert health["index"] == str(db)
        finally:
            server.stop(drain=True)

    def test_reload_counts_invalidated_rows_and_serves_stale(
        self, artifact_file, project, tmp_path
    ):
        db = tmp_path / "stale.db"
        namer = load_namer(artifact_file)
        with RepoIndex(db) as store:
            RepoIndexer(str(project), namer, store).refresh()
            # one row from a previous artifact generation
            record = store.get("pkg/hot.py")
            record.fingerprint = "previous-artifact"
            store.upsert(record)

        engine = AnalysisEngine(
            artifact_path=str(artifact_file), workers=1, index_path=str(db)
        )
        try:
            body = engine.index_file("pkg/hot.py")
            assert body["stale"] is True
            assert body["reports"] == record.reports  # stale beats a 500
            assert engine.metrics.index_json()["stale"] == 1

            reload_body = engine.reload(str(artifact_file))
            assert reload_body["index_rows_stale"] == 1
            assert engine.metrics.index_json()["invalidated"] == 1

            # a refresh re-analyzes the stale row back to freshness
            delta = engine.index_refresh()
            assert delta["refreshed"] == ["pkg/hot.py"]
            assert engine.index_file("pkg/hot.py")["stale"] is False
        finally:
            engine.shutdown(drain=False, timeout=5)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestIndexCli:
    def test_index_watch_stats_doctor_export(
        self, project, artifact_file, tmp_path, capsys
    ):
        db = str(tmp_path / "cli.db")
        art = str(artifact_file)

        assert main(["index", str(project), "--artifacts", art, "--db", db]) == 0
        out = capsys.readouterr().out
        assert "+6" in out and "6 file(s)" in out

        (project / "pkg" / "mod_3.py").write_text("watched_edit = 1\n")
        code = main(
            ["watch", str(project), "--artifacts", art, "--db", db,
             "--cycles", "1", "--interval", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "~1" in out and "unchanged 5" in out

        assert main(["index-stats", db]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["files"] == 6
        assert stats["schema_version"] == INDEX_SCHEMA_VERSION

        assert main(["index-doctor", db, "--artifacts", art]) == 0
        doctor = json.loads(capsys.readouterr().out)
        assert doctor["issues"] == 0

        out_path = tmp_path / "export.json"
        assert main(["index-export", db, "--out", str(out_path)]) == 0
        capsys.readouterr()
        document = json.loads(out_path.read_text())
        assert len(document["files"]) == 6

    def test_stats_on_missing_database_fails(self, tmp_path, capsys):
        code = main(["index-stats", str(tmp_path / "nope.db")])
        assert code == 2
        assert "no index database" in capsys.readouterr().err

    def test_doctor_nonzero_on_issues(
        self, project, artifact_file, tmp_path, capsys
    ):
        db = str(tmp_path / "sick.db")
        (project / "pkg" / "broken.py").write_text("def broken(:\n")
        assert main(
            ["index", str(project), "--artifacts", str(artifact_file),
             "--db", db]
        ) == 0
        capsys.readouterr()
        assert main(["index-doctor", db]) == 1
        doctor = json.loads(capsys.readouterr().out)
        assert doctor["quarantined"] == ["pkg/broken.py"]

    def test_analyze_directory_respects_gitignore(
        self, project, artifact_file, capsys
    ):
        (project / ".gitignore").write_text("skipme/\n")
        (project / "skipme").mkdir()
        (project / "skipme" / "x.py").write_text("def broken(:\n")
        code = main(
            ["analyze", str(project), "--artifacts", str(artifact_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        # the broken file inside an ignored directory was never visited
        assert "6 file(s)" in out
