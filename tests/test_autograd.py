"""Gradient checks for the autodiff engine."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, concat, stack, tensor, zeros


def numeric_gradient(f, x: Tensor, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x.data)
    it = np.nditer(x.data, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        x.data[idx] += eps
        hi = float(f().data)
        x.data[idx] -= 2 * eps
        lo = float(f().data)
        x.data[idx] += eps
        grad[idx] = (hi - lo) / (2 * eps)
    return grad


def check(f, x: Tensor, atol=1e-6):
    x.zero_grad()
    out = f()
    out.backward()
    numeric = numeric_gradient(f, x)
    assert np.allclose(x.grad, numeric, atol=atol), (x.grad, numeric)


rng = np.random.default_rng(42)


class TestElementwiseOps:
    def test_add(self):
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)))
        check(lambda: (a + b).sum(), a)

    def test_mul(self):
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)))
        check(lambda: (a * b).sum(), a)

    def test_div(self):
        a = Tensor(rng.normal(size=(4,)) + 3.0, requires_grad=True)
        b = Tensor(rng.normal(size=(4,)) + 3.0)
        check(lambda: (b / a).sum(), a)

    def test_sub_neg(self):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check(lambda: (1.0 - a).sum(), a)

    def test_broadcasting(self):
        a = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)))
        check(lambda: (a * b).sum(), a)

    def test_relu(self):
        a = Tensor(rng.normal(size=(10,)) + 0.01, requires_grad=True)
        check(lambda: a.relu().sum(), a)

    def test_tanh(self):
        a = Tensor(rng.normal(size=(5,)), requires_grad=True)
        w = Tensor(rng.normal(size=5))
        check(lambda: (a.tanh() * w).sum(), a, atol=1e-5)

    def test_sigmoid(self):
        a = Tensor(rng.normal(size=(5,)), requires_grad=True)
        w = Tensor(rng.normal(size=5))
        check(lambda: (a.sigmoid() * w).sum(), a, atol=1e-5)


class TestMatrixOps:
    def test_matmul(self):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)))
        check(lambda: (a @ b).sum(), a)

    def test_batched_matmul(self):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 3)))
        check(lambda: (a @ b).sum(), a)

    def test_transpose(self):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 3)))
        check(lambda: (a.transpose() * w).sum(), a)

    def test_reshape(self):
        a = Tensor(rng.normal(size=(6,)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 3)))
        check(lambda: (a.reshape(2, 3) * w).sum(), a)

    def test_softmax(self):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 4)))
        check(lambda: (a.softmax(axis=-1) * w).sum(), a, atol=1e-5)

    def test_mean(self):
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        check(lambda: a.mean(), a)

    def test_sum_axis_keepdims(self):
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 1)))
        check(lambda: (a.sum(axis=1, keepdims=True) * w).sum(), a)


class TestIndexingOps:
    def test_gather_rows(self):
        a = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 4])
        w = Tensor(rng.normal(size=(4, 3)))
        check(lambda: (a.gather_rows(idx) * w).sum(), a)

    def test_scatter_add(self):
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        idx = np.array([0, 1, 1, 2])
        w = Tensor(rng.normal(size=(3, 3)))
        check(lambda: (a.scatter_add(idx, 3) * w).sum(), a)

    def test_gather_then_scatter_roundtrip(self):
        a = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        idx = np.array([1, 3])
        w = Tensor(rng.normal(size=(5, 2)))
        check(lambda: (a.gather_rows(idx).scatter_add(idx, 5) * w).sum(), a)


class TestStructuralOps:
    def test_concat(self):
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 3)))
        w = Tensor(rng.normal(size=(3, 5)))
        check(lambda: (concat([a, b], axis=-1) * w).sum(), a)

    def test_stack(self):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)))
        w = Tensor(rng.normal(size=(2, 3)))
        check(lambda: (stack([a, b]) * w).sum(), a)


class TestApi:
    def test_backward_requires_scalar(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            a.backward()

    def test_grad_accumulates_across_uses(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (a + a).sum()
        out.backward()
        assert np.allclose(a.grad, 2.0)

    def test_detach_breaks_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = a.detach().sum()
        out.backward()
        assert a.grad is None

    def test_helpers(self):
        assert zeros(2, 3).shape == (2, 3)
        assert tensor([1.0, 2.0]).shape == (2,)

    def test_diamond_graph(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3.0
        c = a * 4.0
        out = (b + c).sum()
        out.backward()
        assert np.allclose(a.grad, 7.0)
