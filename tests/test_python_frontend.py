"""Tests for the Python frontend."""

import pytest

from repro.lang.python_frontend import (
    PythonFrontendError,
    parse_module,
    parse_statement,
)


def kinds_of(source: str) -> list[str]:
    return [s.root.kind for s in parse_module(source).statements]


class TestStatements:
    def test_assign(self):
        stmt = parse_statement("x = y")
        assert stmt.root.kind == "Assign"
        assert stmt.root.children[0].kind == "NameStore"
        assert stmt.root.children[1].kind == "NameLoad"

    def test_attribute_assign(self):
        stmt = parse_statement("self.name = name")
        target = stmt.root.children[0]
        assert target.kind == "AttributeStore"
        assert target.children[1].kind == "Attr"

    def test_call_projection_drops_exprstmt(self):
        stmt = parse_statement("self.assertTrue(x, 90)")
        assert stmt.root.kind == "Call"

    def test_call_structure_matches_figure2(self):
        stmt = parse_statement("self.assertTrue(picture.rotate_angle, 90)")
        call = stmt.root
        assert call.children[0].kind == "AttributeLoad"
        assert call.children[2].kind == "Num"
        assert call.children[2].children[0].value == "90"

    def test_keyword_argument(self):
        stmt = parse_statement("f(x, key=value)")
        kinds = [c.kind for c in stmt.root.children]
        assert kinds == ["NameLoad", "NameLoad", "Keyword"]

    def test_function_def_registers_signature_only(self):
        module = parse_module("def f(a, b):\n    return a")
        header = module.statements[0]
        assert header.root.kind == "FunctionDef"
        assert all(c.kind != "Body" for c in header.root.children)

    def test_function_params(self):
        module = parse_module("def f(a, *args, **kwargs):\n    pass")
        params = module.statements[0].root.children[1]
        assert [c.kind for c in params.children] == ["Param", "VarArg", "KwArg"]

    def test_class_def(self):
        module = parse_module("class A(Base):\n    pass")
        header = module.statements[0].root
        assert header.kind == "ClassDef"
        bases = header.children[1]
        assert bases.children[0].children[0].value == "Base"

    def test_for_header(self):
        module = parse_module("for i in range(10):\n    pass")
        header = module.statements[0].root
        assert header.kind == "For"
        assert header.children[0].kind == "NameStore"

    def test_augassign(self):
        stmt = parse_statement("x += 1")
        assert stmt.root.value == "AugAssignAdd"

    def test_return(self):
        module = parse_module("def f():\n    return 1")
        assert kinds_of("def f():\n    return 1") == ["FunctionDef", "Return"]

    def test_imports(self):
        module = parse_module("import numpy as np\nfrom os import path")
        assert [s.root.kind for s in module.statements] == ["Import", "ImportFrom"]

    def test_with(self):
        assert "With" in kinds_of("with open('f') as fh:\n    pass")

    def test_try_registers_inner_statements(self):
        source = "try:\n    x = f()\nexcept ValueError as e:\n    y = 1"
        assert "Assign" in kinds_of(source)

    def test_comprehension(self):
        stmt = parse_statement("out = [x for x in items if x]")
        comp = stmt.root.children[1]
        assert comp.kind == "ListComp"

    def test_lambda(self):
        stmt = parse_statement("f = lambda a: a + 1")
        assert stmt.root.children[1].kind == "Lambda"

    def test_fstring(self):
        stmt = parse_statement('msg = f"{x} ok"')
        assert stmt.root.children[1].kind == "FString"

    def test_opaque_statement_does_not_crash(self):
        module = parse_module("async def g():\n    pass")
        assert module.statements


class TestRoles:
    def test_callee_name_role_is_func(self):
        stmt = parse_statement("self.assertTrue(x)")
        attr_ident = stmt.root.children[0].children[1].children[0]
        assert attr_ident.meta["role"] == "func"

    def test_plain_call_role(self):
        stmt = parse_statement("range(10)")
        ident = stmt.root.children[0].children[0]
        assert ident.meta["role"] == "func"

    def test_object_role(self):
        stmt = parse_statement("x = y")
        ident = stmt.root.children[1].children[0]
        assert ident.meta["role"] == "object"

    def test_param_role(self):
        module = parse_module("def f(a):\n    pass")
        param_ident = module.statements[0].root.children[1].children[0].children[0]
        assert param_ident.meta["role"] == "param"


class TestLiterals:
    @pytest.mark.parametrize(
        "source, kind",
        [("x = 1", "Num"), ("x = 'a'", "Str"), ("x = True", "Bool"), ("x = None", "NoneLit")],
    )
    def test_literal_kinds(self, source, kind):
        stmt = parse_statement(source)
        assert stmt.root.children[1].kind == kind

    def test_bool_is_not_num(self):
        stmt = parse_statement("x = False")
        assert stmt.root.children[1].kind == "Bool"


class TestErrors:
    def test_syntax_error(self):
        with pytest.raises(PythonFrontendError):
            parse_module("def broken(:")

    def test_empty_statement_error(self):
        with pytest.raises(PythonFrontendError):
            parse_statement("")


class TestProvenance:
    def test_lines_and_source(self):
        module = parse_module("x = 1\ny = 2\n", file_path="m.py", repo="r")
        assert module.statements[1].line == 2
        assert module.statements[1].source == "y = 2"
        assert module.statements[1].file_path == "m.py"
        assert module.statements[1].repo == "r"

    def test_stmt_index_meta(self):
        module = parse_module("x = 1\nfor i in y:\n    z = i\n")
        indices = [s.root.meta.get("stmt_index") for s in module.statements]
        assert indices == [0, 1, 2]

    def test_moduleir_helpers(self):
        module = parse_module("class A:\n    def m(self):\n        pass")
        assert len(module.classes()) == 1
        assert len(module.functions()) == 1


class TestMatchStatement:
    def test_match_projects_subject(self):
        source = (
            "match command:\n"
            "    case 'start':\n"
            "        x = begin_run()\n"
            "    case _:\n"
            "        x = stop_run()\n"
        )
        module = parse_module(source)
        kinds = [s.root.kind for s in module.statements]
        assert "Switch" in kinds
        assert kinds.count("Assign") == 2
