"""Additional Java parser coverage: nested and tricky constructs."""

from repro.lang.java.frontend import parse_java


def kinds(source):
    return [s.root.kind for s in parse_java(source).statements]


class TestNestedStructures:
    def test_nested_class(self):
        source = (
            "class Outer {\n"
            "    class Inner {\n"
            "        void m() { run(); }\n"
            "    }\n"
            "}\n"
        )
        assert kinds(source).count("ClassDecl") == 2

    def test_static_initializer(self):
        source = "class A { static { setup(); } }"
        assert "Call" in kinds(source)

    def test_anonymous_class_body_skipped(self):
        source = (
            "class A { void m() {"
            " Runnable r = new Runnable() { public void run() { } };"
            " } }"
        )
        assert "VarDecl" in kinds(source)

    def test_interface_default_method(self):
        source = "interface I { default int f() { return 1; } }"
        assert "Return" in kinds(source)

    def test_deeply_nested_generics(self):
        source = (
            "class A { Map<String, List<Map<Integer, Set<String>>>> m() {"
            " return null; } }"
        )
        assert "Return" in kinds(source)


class TestTrickyExpressions:
    def test_cast_vs_parenthesized(self):
        source = (
            "class A { void m() {"
            " int a = (b) + c;"       # parenthesized expr, not a cast
            " double d = (double) e;"  # cast
            " } }"
        )
        module = parse_java(source)
        decls = [s.root for s in module.statements if s.root.kind == "VarDecl"]
        assert len(decls) == 2
        assert not any(n.kind == "Cast" for n in decls[0].walk())
        assert any(n.kind == "Cast" for n in decls[1].walk())

    def test_shift_vs_generics(self):
        source = (
            "class A { void m() {"
            " int x = a >> 2;"
            " List<List<String>> y = build();"
            " int z = a >>> 3;"
            " } }"
        )
        assert kinds(source).count("VarDecl") == 3

    def test_conditional_chain(self):
        source = 'class A { String m(int x) { return x > 0 ? "p" : x < 0 ? "n" : "z"; } }'
        assert "Return" in kinds(source)

    def test_array_of_generics(self):
        source = "class A { void m() { List<String>[] xs = null; } }"
        assert "VarDecl" in kinds(source)

    def test_qualified_new_target(self):
        source = "class A { void m() { Object o = new java.util.ArrayList(); } }"
        module = parse_java(source)
        decl = next(s.root for s in module.statements if s.root.kind == "VarDecl")
        new = next(n for n in decl.walk() if n.kind == "New")
        # qualified names keep the final segment
        assert new.children[0].children[0].value == "ArrayList"

    def test_string_switch_arrow(self):
        source = (
            "class A { void m(int k) { switch (k) {"
            " case 1 -> run();"
            " default -> stop();"
            " } } }"
        )
        assert "Switch" in kinds(source)

    def test_labeled_break_continue(self):
        source = (
            "class A { void m() {"
            " outer: for (int i = 0; i < 3; i++) {"
            "   while (true) { break outer; }"
            " } } }"
        )
        # labels are lexed as identifier + ':'; parser must not crash —
        # the label is consumed as an expression statement heuristically
        try:
            parse_java(source)
        except ValueError:
            # acceptable: labels are outside the modeled subset, but the
            # failure must be the typed frontend error, not a crash
            pass

    def test_char_literals_in_expressions(self):
        source = "class A { boolean m(char c) { return c == 'x'; } }"
        assert "Return" in kinds(source)

    def test_hex_and_long_literals(self):
        source = "class A { void m() { long mask = 0xFFL; int b = 0b101; } }"
        assert kinds(source).count("VarDecl") == 2

    def test_instanceof_pattern_variable(self):
        source = (
            "class A { void m(Object o) {"
            " if (o instanceof String s) { use(s); } } }"
        )
        assert "If" in kinds(source)
