"""End-to-end tests for the Namer system."""

import numpy as np
import pytest

from repro.core.namer import Namer, NamerConfig
from repro.core.patterns import PatternKind
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.mining.miner import MiningConfig


class TestMine:
    def test_summary_populated(self, fitted_namer):
        summary = fitted_namer.summary
        assert summary.num_patterns > 0
        assert summary.total_statements > 0
        assert summary.statements_with_violation > 0
        assert summary.files_with_violation <= summary.total_files
        assert summary.repos_with_violation <= summary.total_repos

    def test_both_pattern_kinds_mined(self, fitted_namer):
        kinds = {p.kind for p in fitted_namer.matcher.patterns}
        assert kinds == {PatternKind.CONSISTENCY, PatternKind.CONFUSING_WORD}

    def test_confusing_pairs_mined(self, fitted_namer):
        pairs = set(fitted_namer.pairs.counts)
        assert ("True", "Equal") in pairs
        assert ("xrange", "range") in pairs

    def test_methods_require_mine(self):
        namer = Namer()
        with pytest.raises(RuntimeError):
            namer.all_violations()

    def test_violations_deduplicated(self, fitted_namer):
        violations = fitted_namer.all_violations()
        keys = [
            (
                v.statement.file_path,
                v.statement.line,
                v.deduction_path.prefix,
                v.observed,
                v.suggested,
            )
            for v in violations
        ]
        assert len(keys) == len(set(keys))

    def test_known_injections_detected(self, small_corpus, fitted_namer, small_oracle):
        violations = fitted_namer.all_violations()
        found = {(v.observed, v.suggested) for v in violations}
        assert ("True", "Equal") in found or ("Equals", "Equal") in found
        assert ("xrange", "range") in found


class TestClassifier:
    def test_featurize_shape(self, fitted_namer):
        violation = fitted_namer.all_violations()[0]
        assert fitted_namer.featurize(violation).shape == (17,)

    def test_classifier_filters(self, fitted_namer):
        violations = fitted_namer.all_violations()
        reports = fitted_namer.classify(violations)
        assert 0 < len(reports) <= len(violations)

    def test_classifier_improves_precision(
        self, fitted_namer, small_oracle
    ):
        violations = fitted_namer.all_violations()
        raw_precision = np.mean([small_oracle.label(v) for v in violations])
        reports = fitted_namer.classify(violations)
        filtered_precision = np.mean(
            [small_oracle.label(r.violation) for r in reports]
        )
        assert filtered_precision >= raw_precision

    def test_ablation_no_classifier_reports_everything(self, small_corpus):
        from tests.conftest import SMALL_MINING

        namer = Namer(NamerConfig(mining=SMALL_MINING, use_classifier=False))
        namer.mine(small_corpus)
        violations = namer.all_violations()
        assert len(namer.classify(violations)) == len(violations)

    def test_ablation_no_analysis_mines_without_origins(self, small_corpus):
        from tests.conftest import SMALL_MINING

        namer = Namer(NamerConfig(mining=SMALL_MINING, use_analysis=False))
        namer.mine(small_corpus)
        for pf in namer.prepared[:3]:
            for ps in pf.statements:
                assert not [n for n in ps.stmt.root.walk() if n.kind == "Origin"]


class TestDetect:
    def test_detect_on_prepared_file(self, fitted_namer):
        for pf in fitted_namer.prepared:
            reports = fitted_namer.detect(pf)
            for report in reports:
                assert report.file_path == pf.path
            if reports:
                return
        pytest.fail("no file produced any report")

    def test_report_fix_rendering(self, fitted_namer):
        reports = fitted_namer.classify(fitted_namer.all_violations())
        named = [r for r in reports if r.observed in ("True", "Equals")]
        if not named:
            pytest.skip("no assert reports in this sample")
        report = named[0]
        assert report.fixed_identifier() == "assertEqual"

    def test_report_describe(self, fitted_namer):
        reports = fitted_namer.classify(fitted_namer.all_violations())
        assert reports
        text = reports[0].describe()
        assert reports[0].observed in text

    def test_detect_many_matches_per_file_detect(self, fitted_namer):
        files = fitted_namer.prepared[:6]
        batched = fitted_namer.detect_many(files)
        assert len(batched) == len(files)
        for pf, group in zip(files, batched):
            single = fitted_namer.detect(pf)
            assert [(r.observed, r.suggested) for r in group] == [
                (r.observed, r.suggested) for r in single
            ]
            # batched BLAS ops round differently in the last ulps
            assert [r.score for r in group] == pytest.approx(
                [r.score for r in single]
            )

    def test_report_to_json_round_trips_through_json(self, fitted_namer):
        import json

        reports = fitted_namer.classify(fitted_namer.all_violations())
        assert reports
        row = json.loads(json.dumps(reports[0].to_json()))
        assert row["observed"] == reports[0].observed
        assert row["file"] == reports[0].file_path
        assert row["kind"] in ("consistency", "confusing_word")
