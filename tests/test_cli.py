"""Tests for the ``python -m repro`` command-line interface."""

import pathlib

import pytest

from repro.__main__ import build_parser, main

BUGGY_PROJECT = {
    "app.py": (
        "from unittest import TestCase\n"
        "class TestApp(TestCase):\n"
        "    def test_size(self):\n"
        "        app = self.build_app()\n"
        "        self.assertEqual(app.size, 3)\n"
        "    def test_count(self):\n"
        "        app = self.build_app()\n"
        "        self.assertTrue(app.count, 5)\n"
    ),
}


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "namer.json"
    code = main(
        [
            "mine", "--out", str(out), "--repos", "25",
            "--min-support", "12", "--min-frequency", "5", "--seed", "3",
        ]
    )
    assert code == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine"])
        assert args.out == "namer.json"
        assert args.language == "python"

    def test_scan_args(self):
        args = build_parser().parse_args(["scan", "proj", "--fix"])
        assert args.path == "proj" and args.fix

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8750 and args.workers == 4
        assert args.cache_size == 1024 and args.queue_capacity == 64

    def test_analyze_remote_defaults(self):
        args = build_parser().parse_args(["analyze-remote", "proj"])
        assert args.path == "proj"
        assert args.url == "http://127.0.0.1:8750"
        assert args.retries == 3 and args.backoff == 0.1

    def test_mine_resilience_flags(self):
        args = build_parser().parse_args(
            ["mine", "--resume", "--checkpoint-dir", "ck",
             "--keep-checkpoints", "--fault-plan", "plan.json"]
        )
        assert args.resume and args.keep_checkpoints
        assert args.checkpoint_dir == "ck"
        assert args.fault_plan == "plan.json"

    def test_serve_strict_artifacts_flag(self):
        args = build_parser().parse_args(["serve", "--strict-artifacts"])
        assert args.strict_artifacts
        assert not build_parser().parse_args(["serve"]).strict_artifacts

    def test_mine_cache_flags(self):
        args = build_parser().parse_args(["mine"])
        assert args.cache_dir is None and not args.no_cache
        args = build_parser().parse_args(
            ["mine", "--cache-dir", "warm", "--no-cache"]
        )
        assert args.cache_dir == "warm" and args.no_cache

    def test_serve_cache_dir_flag(self):
        assert build_parser().parse_args(["serve"]).cache_dir is None
        args = build_parser().parse_args(["serve", "--cache-dir", "d"])
        assert args.cache_dir == "d"


class TestCommands:
    def test_mine_writes_artifacts(self, artifacts):
        assert artifacts.exists()
        assert artifacts.stat().st_size > 1000

    def test_scan_reports(self, artifacts, tmp_path, capsys):
        project = tmp_path / "proj"
        project.mkdir()
        for name, source in BUGGY_PROJECT.items():
            (project / name).write_text(source)
        code = main(["scan", str(project), "--artifacts", str(artifacts)])
        assert code == 0
        out = capsys.readouterr().out
        assert "naming issue(s) reported" in out

    def test_scan_fix_modifies_file(self, artifacts, tmp_path, capsys):
        project = tmp_path / "fixproj"
        project.mkdir()
        target = project / "app.py"
        target.write_text(BUGGY_PROJECT["app.py"])
        main(["scan", str(project), "--artifacts", str(artifacts), "--fix"])
        out = capsys.readouterr().out
        if "replace 'True'" in out:
            assert "assertEqual(app.count, 5)" in target.read_text()

    def test_scan_skips_unparsable(self, artifacts, tmp_path, capsys):
        project = tmp_path / "badproj"
        project.mkdir()
        (project / "broken.py").write_text("def broken(:")
        code = main(["scan", str(project), "--artifacts", str(artifacts)])
        assert code == 0
        err = capsys.readouterr().err
        assert "unparsable" in err

    def test_scan_skips_undecodable_file(self, artifacts, tmp_path, capsys):
        project = tmp_path / "mixedproj"
        project.mkdir()
        (project / "good.py").write_text(BUGGY_PROJECT["app.py"])
        (project / "bad.py").write_bytes(b"\xff\xfe\x00junk")
        code = main(["scan", str(project), "--artifacts", str(artifacts)])
        assert code == 0
        captured = capsys.readouterr()
        assert "cannot read" in captured.err
        assert "naming issue(s) reported" in captured.out

    def test_scan_fails_when_every_file_is_unreadable(
        self, artifacts, tmp_path, capsys
    ):
        project = tmp_path / "allbad"
        project.mkdir()
        (project / "only.py").write_bytes(b"\xff\xfe\x00junk")
        code = main(["scan", str(project), "--artifacts", str(artifacts)])
        assert code != 0
        assert "unreadable" in capsys.readouterr().err

    def test_mine_resume_round_trip(self, tmp_path, capsys):
        import json

        from repro.resilience.faults import FAULTS

        base = ["--repos", "6", "--min-support", "12", "--min-frequency", "5"]
        out_a = tmp_path / "a.json"
        assert main(["mine", "--out", str(out_a), *base]) == 0

        plan = tmp_path / "kill.json"
        plan.write_text(json.dumps({
            "seed": 0,
            "specs": [{"site": "pipeline.after_train", "max_trips": 1}],
        }))
        out_b = tmp_path / "b.json"
        try:
            code = main(
                ["mine", "--out", str(out_b), "--fault-plan", str(plan), *base]
            )
        finally:
            FAULTS.disarm()  # the CLI arms the process-wide injector
        assert code == 3 and not out_b.exists()
        assert (tmp_path / "b.json.ckpt" / "train.ckpt.json").exists()

        assert main(["mine", "--out", str(out_b), "--resume", *base]) == 0
        assert "resumed from checkpoint" in capsys.readouterr().out
        assert out_b.read_bytes() == out_a.read_bytes()

    def test_scan_style_flag(self, artifacts, tmp_path, capsys):
        project = tmp_path / "styleproj"
        project.mkdir()
        (project / "mixed.py").write_text(
            "def load_user_record(user_id, record_key):\n"
            "    raw_data = fetch_remote_data(user_id)\n"
            "    parsed_row = parse_data_row(raw_data)\n"
            "    final_result = merge_row_values(parsed_row, record_key)\n"
            "    return final_result\n"
            "def helperMethod(inputValue):\n"
            "    return inputValue\n"
        )
        code = main(
            ["scan", str(project), "--artifacts", str(artifacts), "--style"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "helperMethod" in out

    def test_analyze_remote_round_trip(self, artifacts, tmp_path, capsys):
        from repro.service.engine import AnalysisEngine
        from repro.service.server import AnalysisServer

        server = AnalysisServer(
            AnalysisEngine(artifact_path=str(artifacts), workers=1), port=0
        ).start()
        try:
            project = tmp_path / "remoteproj"
            project.mkdir()
            for name, source in BUGGY_PROJECT.items():
                (project / name).write_text(source)
            code = main(["analyze-remote", str(project), "--url", server.url])
            assert code == 0
            out = capsys.readouterr().out
            assert "naming issue(s) reported" in out
            assert "cache: memory=0 disk=0 miss=1" in out
            # Re-analyzing hits the daemon's result cache, and the CLI
            # surfaces the disposition from the X-Repro-Cache header.
            assert main(["analyze-remote", str(project), "--url", server.url]) == 0
            assert "cache: memory=1 disk=0 miss=0" in capsys.readouterr().out
        finally:
            server.stop()

    def test_mine_warm_cache_round_trip(self, tmp_path, capsys):
        base = [
            "--repos", "6", "--min-support", "10", "--min-frequency", "5",
            "--cache-dir", str(tmp_path / "warm"),
        ]
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert main(["mine", "--out", str(out_a), *base]) == 0
        assert (tmp_path / "warm").is_dir()
        assert main(["mine", "--out", str(out_b), *base]) == 0
        # The warm run mined bit-identical artifacts from the cache.
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_mine_no_cache_skips_cache_dir(self, tmp_path):
        out = tmp_path / "n.json"
        code = main([
            "mine", "--out", str(out), "--no-cache",
            "--repos", "6", "--min-support", "10", "--min-frequency", "5",
        ])
        assert code == 0
        assert not (tmp_path / "n.json.cache").exists()

    def test_eval_prints_table(self, capsys):
        code = main(
            [
                "eval", "--repos", "10", "--sample", "40",
                "--min-support", "10", "--min-frequency", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Namer" in out and "w/o C" in out


class TestFailureExitCodes:
    """Failures exit nonzero with a message on stderr, not a traceback."""

    def test_scan_missing_artifacts(self, tmp_path, capsys):
        code = main(
            ["scan", str(tmp_path), "--artifacts", str(tmp_path / "missing.json")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_scan_corrupt_artifacts(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["scan", str(tmp_path), "--artifacts", str(bad)])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_scan_nonexistent_path(self, artifacts, tmp_path, capsys):
        code = main(
            ["scan", str(tmp_path / "nowhere"), "--artifacts", str(artifacts)]
        )
        assert code == 1
        assert "no such file" in capsys.readouterr().err

    def test_scan_single_unparseable_file_fails(self, artifacts, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:")
        code = main(["scan", str(bad), "--artifacts", str(artifacts)])
        assert code == 1
        assert "unparseable" in capsys.readouterr().err

    def test_serve_missing_artifacts(self, tmp_path, capsys):
        code = main(["serve", "--artifacts", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_analyze_remote_unreachable_daemon(self, tmp_path, capsys):
        target = tmp_path / "app.py"
        target.write_text("x = 1\n")
        code = main(
            ["analyze-remote", str(target), "--url", "http://127.0.0.1:9",
             "--timeout", "2"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_analyze_remote_nonexistent_path(self, capsys):
        code = main(["analyze-remote", "/nonexistent/path"])
        assert code == 1
        assert "no such file" in capsys.readouterr().err
