"""Tests for the ``python -m repro`` command-line interface."""

import pathlib

import pytest

from repro.__main__ import build_parser, main

BUGGY_PROJECT = {
    "app.py": (
        "from unittest import TestCase\n"
        "class TestApp(TestCase):\n"
        "    def test_size(self):\n"
        "        app = self.build_app()\n"
        "        self.assertEqual(app.size, 3)\n"
        "    def test_count(self):\n"
        "        app = self.build_app()\n"
        "        self.assertTrue(app.count, 5)\n"
    ),
}


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "namer.json"
    code = main(
        [
            "mine", "--out", str(out), "--repos", "25",
            "--min-support", "12", "--min-frequency", "5", "--seed", "3",
        ]
    )
    assert code == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine"])
        assert args.out == "namer.json"
        assert args.language == "python"

    def test_scan_args(self):
        args = build_parser().parse_args(["scan", "proj", "--fix"])
        assert args.path == "proj" and args.fix


class TestCommands:
    def test_mine_writes_artifacts(self, artifacts):
        assert artifacts.exists()
        assert artifacts.stat().st_size > 1000

    def test_scan_reports(self, artifacts, tmp_path, capsys):
        project = tmp_path / "proj"
        project.mkdir()
        for name, source in BUGGY_PROJECT.items():
            (project / name).write_text(source)
        code = main(["scan", str(project), "--artifacts", str(artifacts)])
        assert code == 0
        out = capsys.readouterr().out
        assert "naming issue(s) reported" in out

    def test_scan_fix_modifies_file(self, artifacts, tmp_path, capsys):
        project = tmp_path / "fixproj"
        project.mkdir()
        target = project / "app.py"
        target.write_text(BUGGY_PROJECT["app.py"])
        main(["scan", str(project), "--artifacts", str(artifacts), "--fix"])
        out = capsys.readouterr().out
        if "replace 'True'" in out:
            assert "assertEqual(app.count, 5)" in target.read_text()

    def test_scan_skips_unparsable(self, artifacts, tmp_path, capsys):
        project = tmp_path / "badproj"
        project.mkdir()
        (project / "broken.py").write_text("def broken(:")
        code = main(["scan", str(project), "--artifacts", str(artifacts)])
        assert code == 0
        err = capsys.readouterr().err
        assert "unparsable" in err

    def test_scan_style_flag(self, artifacts, tmp_path, capsys):
        project = tmp_path / "styleproj"
        project.mkdir()
        (project / "mixed.py").write_text(
            "def load_user_record(user_id, record_key):\n"
            "    raw_data = fetch_remote_data(user_id)\n"
            "    parsed_row = parse_data_row(raw_data)\n"
            "    final_result = merge_row_values(parsed_row, record_key)\n"
            "    return final_result\n"
            "def helperMethod(inputValue):\n"
            "    return inputValue\n"
        )
        code = main(
            ["scan", str(project), "--artifacts", str(artifacts), "--style"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "helperMethod" in out

    def test_eval_prints_table(self, capsys):
        code = main(
            [
                "eval", "--repos", "10", "--sample", "40",
                "--min-support", "10", "--min-frequency", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Namer" in out and "w/o C" in out
