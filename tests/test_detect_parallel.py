"""Parallel batch detection: equivalence, faults, profiling, service.

``Namer.detect_many(workers=N)`` must be invisible in the output: the
same reports, byte for byte, in the same order as a serial run — for
any worker count, with or without an armed fault plan, and whether the
pool forks or ships real slices.  These tests pin that contract the
same way ``tests/test_parallel.py`` pins it for mining.
"""

from __future__ import annotations

import json

import pytest

from repro.core.namer import Namer, NamerConfig
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.mining.miner import MiningConfig
from repro.parallel.executor import ShardExecutor
from repro.parallel.profiler import PhaseProfiler
from repro.resilience.faults import FAULTS, FaultPlan, FaultSpec, InjectedFault
from repro.resilience.quarantine import Quarantine


@pytest.fixture(scope="module")
def trained_namer():
    corpus = generate_python_corpus(
        GeneratorConfig(num_repos=8, issue_rate=0.15, seed=31)
    )
    namer = Namer(
        NamerConfig(
            mining=MiningConfig(min_pattern_support=8, min_path_frequency=4)
        )
    )
    namer.mine(corpus)
    violations = namer.all_violations()[:40]
    namer.train(violations, [i % 2 for i in range(len(violations))])
    return namer


def report_blob(groups) -> str:
    """Canonical bytes of a detect_many result."""
    return json.dumps(
        [[r.to_json() for r in g] for g in groups], sort_keys=True
    )


class TestParallelDetectEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_byte_identical_reports(self, trained_namer, workers):
        namer = trained_namer
        serial = report_blob(namer.detect_many(namer.prepared))
        parallel = report_blob(
            namer.detect_many(namer.prepared, workers=workers)
        )
        assert parallel == serial

    def test_duplicate_file_paths_keep_input_order(self, trained_namer):
        """The same file submitted several times (and interleaved with
        others) must come back once per submission, in input order."""
        namer = trained_namer
        files = namer.prepared[:3]
        batch = [files[0], files[1], files[0], files[2], files[0], files[1]]
        serial = namer.detect_many(batch)
        parallel = namer.detect_many(batch, workers=3)
        assert len(parallel) == len(batch)
        assert report_blob(parallel) == report_blob(serial)
        assert report_blob([parallel[0]]) == report_blob([parallel[2]])

    def test_shared_executor_across_batches(self, trained_namer):
        """A long-lived executor (the service's usage) serves repeated
        batches identically, reusing one warm pool."""
        namer = trained_namer
        serial = report_blob(namer.detect_many(namer.prepared))
        with ShardExecutor(2) as executor:
            namer.warm_detect(executor)
            for _ in range(2):
                assert (
                    report_blob(
                        namer.detect_many(namer.prepared, executor=executor)
                    )
                    == serial
                )

    def test_empty_and_single_batches(self, trained_namer):
        namer = trained_namer
        assert namer.detect_many([], workers=4) == []
        one = namer.prepared[:1]
        assert report_blob(
            namer.detect_many(one, workers=4)
        ) == report_blob(namer.detect_many(one))

    def test_unmined_namer_raises(self):
        with pytest.raises(RuntimeError, match="mine"):
            Namer().detect_many([], workers=2)


class CountingExecutor(ShardExecutor):
    """Records how many tasks each ``map`` call dispatched."""

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        self.task_counts: list[int] = []

    def map(self, fn, tasks):
        self.task_counts.append(len(tasks))
        return super().map(fn, tasks)


class TestDetectTaskBatching:
    """Files are batched ~DETECT_FILES_PER_TASK per worker task: the
    span plan is capped by ceil(files / K), and the cap changes nothing
    about the output."""

    def test_task_count_capped_by_batch_size(self, trained_namer):
        from repro.core.namer import DETECT_FILES_PER_TASK

        namer = trained_namer
        files = namer.prepared
        assert len(files) > DETECT_FILES_PER_TASK, (
            "fixture too small for the batching cap to bind"
        )
        serial = report_blob(namer.detect_many(files))
        max_tasks = -(-len(files) // DETECT_FILES_PER_TASK)
        with CountingExecutor(64) as executor:
            # a pool this wide would plan far more than max_tasks spans
            # without the batching floor
            assert executor.shard_hint(len(files)) > max_tasks
            parallel = report_blob(
                namer.detect_many(files, executor=executor)
            )
        assert parallel == serial
        assert executor.task_counts == [max_tasks]

    def test_narrow_pool_keeps_its_own_plan(self, trained_namer):
        """When the pool is the binding constraint the plan is
        unchanged from the unbatched one."""
        namer = trained_namer
        files = namer.prepared
        with CountingExecutor(2) as executor:
            hint = executor.shard_hint(len(files))
            namer.detect_many(files, executor=executor)
        assert executor.task_counts == [hint]

    def test_tiny_batch_runs_as_one_task(self, trained_namer):
        namer = trained_namer
        files = namer.prepared[:3]
        serial = report_blob(namer.detect_many(files))
        with CountingExecutor(8) as executor:
            parallel = report_blob(
                namer.detect_many(files, executor=executor)
            )
        assert parallel == serial
        assert executor.task_counts == [1]


class TestParallelDetectFaults:
    PLAN = dict(
        specs=[
            dict(site="core.detect", rate=0.4),
            dict(site="core.featurize", rate=0.3),
        ],
        seed=5,
    )

    def _plan(self) -> FaultPlan:
        return FaultPlan(
            [FaultSpec(**s) for s in self.PLAN["specs"]],
            seed=self.PLAN["seed"],
        )

    def _run(self, namer, workers):
        with FAULTS.armed(self._plan()):
            quarantine = Quarantine()
            groups = namer.detect_many(
                namer.prepared,
                quarantine=quarantine,
                workers=workers,
            )
        return report_blob(groups), [
            (r.path, r.stage, r.kind, r.repo) for r in quarantine.records
        ]

    @pytest.mark.parametrize("workers", [2, 7])
    def test_quarantine_parity_under_faults(self, trained_namer, workers):
        """An armed plan must trip the same (site, key) pairs and leave
        the same quarantine records — in the same capture order — with
        the work fanned across processes."""
        serial_blob, serial_records = self._run(trained_namer, 1)
        parallel_blob, parallel_records = self._run(trained_namer, workers)
        assert serial_records, "plan must actually trip for this test to bite"
        assert parallel_records == serial_records
        assert parallel_blob == serial_blob

    def test_detect_records_precede_featurize_records(self, trained_namer):
        """Capture order is part of parity: all detect-stage records
        (file order) land before any featurize-stage record."""
        _, records = self._run(trained_namer, 3)
        stages = [stage for _, stage, _, _ in records]
        assert "detect" in stages and "featurize" in stages
        assert stages == sorted(stages)  # "detect" < "featurize"

    def test_faults_raise_without_quarantine(self, trained_namer):
        """No quarantine = fail loudly, parallel included."""
        plan = FaultPlan([FaultSpec(site="core.detect", rate=1.0)], seed=1)
        with FAULTS.armed(plan):
            with pytest.raises(InjectedFault):
                trained_namer.detect_many(trained_namer.prepared, workers=2)

    def test_pool_outliving_armed_block_is_disarmed(self, trained_namer):
        """Workers forked while a plan was armed must not keep injecting
        after the parent disarms: the (empty) plan state ships with
        every task."""
        namer = trained_namer
        with ShardExecutor(2) as executor:
            namer.warm_detect(executor)
            plan = FaultPlan([FaultSpec(site="core.detect", rate=1.0)], seed=1)
            with FAULTS.armed(plan):
                quarantine = Quarantine()
                namer.detect_many(
                    namer.prepared, quarantine=quarantine, executor=executor
                )
                assert len(quarantine.records) == len(namer.prepared)
            clean = namer.detect_many(namer.prepared, executor=executor)
            assert report_blob(clean) == report_blob(
                namer.detect_many(namer.prepared)
            )


class TestDetectProfiling:
    def test_phase_rows(self, trained_namer):
        namer = trained_namer
        for workers in (1, 3):
            profiler = PhaseProfiler()
            namer.detect_many(
                namer.prepared, workers=workers, profiler=profiler
            )
            rows = {row["phase"]: row for row in profiler.to_json()}
            assert set(rows) == {"extract", "match", "featurize", "classify"}
            assert rows["extract"]["items"] == len(namer.prepared)
            assert rows["match"]["items"] == len(namer.prepared)
            assert rows["classify"]["calls"] == 1

    def test_default_profiler_accumulates(self, trained_namer):
        namer = trained_namer
        before = namer.detect_profiler.seconds_for("match")
        namer.detect_many(namer.prepared[:2])
        assert namer.detect_profiler.seconds_for("match") >= before

    def test_profiler_record_is_thread_safe(self):
        import threading

        profiler = PhaseProfiler()
        threads = [
            threading.Thread(
                target=lambda: [
                    profiler.record("match", 0.001, items=1)
                    for _ in range(200)
                ]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        (row,) = profiler.rows()
        assert row.calls == 8 * 200
        assert row.items == 8 * 200


class TestEngineParallelDetection:
    def test_detect_workers_equivalence(self, trained_namer, tmp_path):
        """The engine serves identical wire results with detection
        inline or fanned over a warm process pool."""
        from repro.core.persistence import namer_to_document, save_document
        from repro.service.engine import AnalysisEngine, AnalysisRequest

        artifact = tmp_path / "namer.json"
        save_document(namer_to_document(trained_namer), str(artifact))
        requests = [
            AnalysisRequest(
                source="def handle(packet):\n    return packet.payload\n",
                path=f"svc/file_{i}.py",
            )
            for i in range(6)
        ]
        engines = [
            AnalysisEngine(artifact_path=str(artifact), detect_workers=w)
            for w in (1, 2)
        ]
        def wire(engine):
            rows = [r.to_json() for r in engine.analyze_many(requests)]
            for row in rows:
                row.pop("elapsed_ms")  # timing metadata, legitimately differs
            return rows

        try:
            inline, pooled = (wire(engine) for engine in engines)
            assert pooled == inline
            assert engines[1].health()["detect_workers"] == 2
            phases = engines[1].metrics_json()["detection_phases"]
            assert {row["phase"] for row in phases} >= {"classify"}
        finally:
            for engine in engines:
                engine.shutdown(drain=False, timeout=10)
