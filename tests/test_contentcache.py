"""Tests for the content-addressed cache store (`repro.cache`).

The store's contract: a key identifies content exactly (schema version,
length-prefixed parts), entries round-trip through pickle, damage of any
kind — truncation, bit flips, wrong schema, injected I/O faults — reads
as a miss (never an exception), and levels evict LRU past their cap.
"""

import json
import os

import pytest

from repro.cache import (
    CACHE_SCHEMA_VERSION,
    ContentCache,
    config_fingerprint,
    fingerprint_of,
    pattern_fingerprint,
    shard_content_keys,
)
from repro.core.namepath import NamePath, PathStep
from repro.core.patterns import NamePattern, PatternKind
from repro.resilience.faults import FAULTS, FaultPlan, FaultSpec

pytestmark = pytest.mark.cache


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------


class TestKeys:
    def test_key_is_deterministic(self):
        assert ContentCache.key("a", "b") == ContentCache.key("a", "b")

    def test_length_prefix_prevents_concatenation_collisions(self):
        assert ContentCache.key("ab", "c") != ContentCache.key("a", "bc")

    def test_key_accepts_bytes_and_text(self):
        assert ContentCache.key(b"raw") != ContentCache.key("raw", "x")

    def test_schema_version_is_part_of_every_key(self, monkeypatch):
        before = ContentCache.key("same", "parts")
        monkeypatch.setattr(
            "repro.cache.contentcache.CACHE_SCHEMA_VERSION",
            CACHE_SCHEMA_VERSION + 1,
        )
        assert ContentCache.key("same", "parts") != before

    def test_fingerprint_of_is_order_sensitive(self):
        assert fingerprint_of(["a", "b"]) != fingerprint_of(["b", "a"])
        assert fingerprint_of(["ab"]) != fingerprint_of(["a", "b"])

    def test_config_fingerprint_joins_reprs(self):
        assert config_fingerprint(1, "x") == "1|'x'"

    def test_pattern_fingerprint_sorts_sets(self):
        a = NamePath((PathStep("Call", 0),), "count")
        b = NamePath((PathStep("Attr", 1),), "total")
        sym = [
            NamePath((PathStep("Call", 0),), None),
            NamePath((PathStep("Attr", 1),), None),
        ]
        p1 = NamePattern(
            condition=frozenset([a, b]),
            deduction=frozenset(sym),
            kind=PatternKind.CONSISTENCY,
            support=3,
        )
        p2 = NamePattern(
            condition=frozenset([b, a]),
            deduction=frozenset(reversed(sym)),
            kind=PatternKind.CONSISTENCY,
            support=3,
        )
        assert pattern_fingerprint(p1) == pattern_fingerprint(p2)


class TestShardContentKeys:
    def test_keys_follow_covered_files(self):
        keys = shard_content_keys([(0, 2), (2, 3)], [2, 1], ["k1", "k2"])
        assert keys is not None and len(keys) == 2
        # Same files, same keys; a changed file key changes its shard only.
        changed = shard_content_keys([(0, 2), (2, 3)], [2, 1], ["k1", "XX"])
        assert changed[0] == keys[0] and changed[1] != keys[1]

    def test_misaligned_span_returns_none(self):
        assert shard_content_keys([(0, 1)], [2], ["k1"]) is None

    def test_zero_statement_files_do_not_affect_keys(self):
        with_empty = shard_content_keys(
            [(0, 2), (2, 3)], [2, 0, 1], ["k1", "EMPTY", "k2"]
        )
        without = shard_content_keys([(0, 2), (2, 3)], [2, 1], ["k1", "k2"])
        assert with_empty == without

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            shard_content_keys([(0, 1)], [1, 1], ["k1"])


# ----------------------------------------------------------------------
# Store round-trips and damage handling
# ----------------------------------------------------------------------


@pytest.fixture()
def cache(tmp_path):
    return ContentCache(tmp_path / "cache")


def _entry_files(cache: ContentCache, level: str):
    return sorted((cache.directory / level).glob("*.bin"))


class TestStore:
    def test_roundtrip(self, cache):
        key = ContentCache.key("file-bytes")
        cache.put("prepare", key, {"value": [1, 2, 3]})
        assert cache.get("prepare", key) == {"value": [1, 2, 3]}
        stats = cache.stats_json()["prepare"]
        assert stats["hits"] == 1 and stats["stores"] == 1

    def test_absent_key_is_a_plain_miss(self, cache):
        assert cache.get("prepare", ContentCache.key("nope")) is None
        stats = cache.stats_json()["prepare"]
        assert stats["misses"] == 1 and stats["corrupt"] == 0

    def test_levels_are_isolated(self, cache):
        key = ContentCache.key("shared")
        cache.put("frequency", key, 1)
        assert cache.get("growth", key) is None
        assert cache.get("frequency", key) == 1

    def test_truncated_payload_is_corrupt_miss_and_unlinked(self, cache):
        key = ContentCache.key("t")
        cache.put("prepare", key, list(range(100)))
        (path,) = _entry_files(cache, "prepare")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        assert cache.get("prepare", key) is None
        assert cache.stats_json()["prepare"]["corrupt"] == 1
        assert not path.exists()  # damaged entries stop costing reads

    def test_flipped_payload_bit_fails_checksum(self, cache):
        key = ContentCache.key("b")
        cache.put("prepare", key, list(range(100)))
        (path,) = _entry_files(cache, "prepare")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert cache.get("prepare", key) is None
        assert cache.stats_json()["prepare"]["corrupt"] == 1

    def test_garbage_header_is_corrupt_miss(self, cache):
        key = ContentCache.key("g")
        path = cache.directory / "prepare" / f"{key}.bin"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not json at all\n\x00\x01")
        assert cache.get("prepare", key) is None
        assert cache.stats_json()["prepare"]["corrupt"] == 1

    def test_stale_schema_entry_reads_as_corrupt_miss(self, cache):
        """An entry written by an older schema version: even if a key
        somehow collided, the header schema check rejects it."""
        key = ContentCache.key("s")
        cache.put("prepare", key, "payload")
        (path,) = _entry_files(cache, "prepare")
        header_line, _, payload = path.read_bytes().partition(b"\n")
        header = json.loads(header_line)
        header["schema"] = CACHE_SCHEMA_VERSION - 1
        path.write_bytes(
            json.dumps(header, separators=(",", ":")).encode() + b"\n" + payload
        )
        assert cache.get("prepare", key) is None
        assert cache.stats_json()["prepare"]["corrupt"] == 1

    def test_injected_load_fault_is_a_corrupt_miss(self, cache):
        """The `cache.load` fault site: an injected failure degrades to
        a recompute, never an exception for the caller."""
        key = ContentCache.key("f")
        cache.put("prepare", key, "payload")
        plan = FaultPlan([FaultSpec(site="cache.load", rate=1.0)], seed=1)
        with FAULTS.armed(plan):
            assert cache.get("prepare", key) is None
        assert cache.stats_json()["prepare"]["corrupt"] == 1
        # After the plan is disarmed the entry was unlinked (treated as
        # damaged), so the next read is a clean miss and a re-put works.
        assert cache.get("prepare", key) is None
        cache.put("prepare", key, "payload")
        assert cache.get("prepare", key) == "payload"

    def test_eviction_drops_least_recently_used(self, tmp_path):
        cache = ContentCache(tmp_path / "c", max_entries_per_level=3)
        keys = [ContentCache.key(f"k{i}") for i in range(4)]
        for i, key in enumerate(keys):
            cache.put("prepare", key, i)
            path = cache.directory / "prepare" / f"{key}.bin"
            os.utime(path, (1000 + i, 1000 + i))  # deterministic LRU order
        assert len(_entry_files(cache, "prepare")) == 3
        assert cache.get("prepare", keys[0]) is None  # oldest evicted
        assert cache.get("prepare", keys[3]) == 3
        assert cache.stats_json()["prepare"]["evictions"] == 1

    def test_put_survives_unwritable_level(self, tmp_path):
        """A level directory that turns into a non-directory (or any
        other OSError on write) degrades to a skipped store — a sick
        disk slows runs down, never fails them.  (chmod tricks don't
        work under root, so the test swaps the directory for a file.)"""
        cache = ContentCache(tmp_path / "c")
        level_dir = cache._level("prepare").directory
        level_dir.rmdir()
        level_dir.write_text("not a directory")
        cache.put("prepare", ContentCache.key("k"), "v")  # must not raise
        assert cache.stats_json()["prepare"]["stores"] == 0
