"""Tests for corpus preparation (including the parallel path)."""

import pytest

from repro.core.prepare import prepare_corpus, prepare_file
from repro.core.transform import TransformConfig
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.corpus.model import SourceFile


@pytest.fixture(scope="module")
def tiny_corpus():
    return generate_python_corpus(GeneratorConfig(num_repos=3, seed=31))


class TestPrepareFile:
    def test_prepares_statements_with_paths(self):
        prepared = prepare_file(
            SourceFile(path="a.py", source="x = some_value\ny = x\n"), repo="r"
        )
        assert prepared is not None
        assert prepared.path == "a.py" and prepared.repo == "r"
        for ps in prepared.statements:
            assert ps.paths

    def test_unparsable_returns_none(self):
        assert prepare_file(SourceFile(path="b.py", source="def broken(:")) is None

    def test_analysis_toggle(self):
        source = SourceFile(
            path="c.py",
            source=(
                "class T(TestCase):\n"
                "    def m(self):\n"
                "        self.run_it()\n"
            ),
        )
        with_a = prepare_file(source, use_analysis=True)
        without_a = prepare_file(source, use_analysis=False)
        has_origin = lambda pf: any(
            n.kind == "Origin" for ps in pf.statements for n in ps.stmt.root.walk()
        )
        assert has_origin(with_a)
        assert not has_origin(without_a)

    def test_max_paths_cap(self):
        source = SourceFile(
            path="d.py", source="f(a, b, c, d, e, g, h, i, j, k, l, m)\n"
        )
        prepared = prepare_file(source, max_paths=4)
        assert all(len(ps.paths) <= 4 for ps in prepared.statements)

    def test_java_language(self):
        source = SourceFile(
            path="E.java",
            source="class E { void m() { int x = 1; } }",
            language="java",
        )
        prepared = prepare_file(source)
        assert prepared is not None and prepared.statements


class TestPrepareCorpus:
    def test_sequential(self, tiny_corpus):
        prepared = prepare_corpus(tiny_corpus)
        assert len(prepared) == tiny_corpus.file_count()

    def test_parallel_matches_sequential(self, tiny_corpus):
        sequential = prepare_corpus(tiny_corpus, workers=1)
        parallel = prepare_corpus(tiny_corpus, workers=2)
        assert [pf.path for pf in parallel] == [pf.path for pf in sequential]
        for a, b in zip(sequential, parallel):
            assert len(a.statements) == len(b.statements)
            for ps_a, ps_b in zip(a.statements, b.statements):
                assert ps_a.paths == ps_b.paths

    def test_transform_config_defaults_to_analysis_flag(self, tiny_corpus):
        prepared = prepare_corpus(tiny_corpus, use_analysis=False)
        assert all(
            n.kind != "Origin"
            for pf in prepared[:3]
            for ps in pf.statements
            for n in ps.stmt.root.walk()
        )

    def test_explicit_transform_config(self, tiny_corpus):
        prepared = prepare_corpus(
            tiny_corpus, transform_config=TransformConfig(max_subtokens=1)
        )
        # every identifier kept whole: no NumST(k>1) wrappers
        for pf in prepared[:3]:
            for ps in pf.statements:
                for n in ps.stmt.root.walk():
                    if n.kind == "NumST":
                        assert n.value == "NumST(1)"
