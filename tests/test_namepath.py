"""Tests for name paths and their relational operators."""

from hypothesis import given, strategies as st

from repro.core.namepath import (
    EPSILON,
    NamePath,
    PathStep,
    equal,
    extract_name_paths,
    paths_by_prefix,
    similar,
)
from repro.core.transform import transform_statement
from repro.lang.astir import node, terminal
from repro.lang.python_frontend import parse_statement


def path(steps, end):
    return NamePath(prefix=tuple(PathStep(v, i) for v, i in steps), end=end)


class TestOperators:
    def test_similar_requires_equal_prefixes(self):
        a = path([("Call", 0)], "x")
        b = path([("Call", 0)], "y")
        c = path([("Call", 1)], "x")
        assert similar(a, b)
        assert not similar(a, c)

    def test_equal_requires_equal_ends(self):
        a = path([("Call", 0)], "x")
        b = path([("Call", 0)], "y")
        assert not equal(a, b)
        assert equal(a, a)

    def test_epsilon_equals_anything(self):
        a = path([("Call", 0)], "x")
        e = path([("Call", 0)], EPSILON)
        assert equal(a, e) and equal(e, a)

    def test_example_3_5(self):
        np1 = path([("Attr", 0)], "True")
        np2 = path([("Attr", 0)], "Equal")
        np3 = path([("Attr", 0)], EPSILON)
        assert similar(np1, np2)
        assert not equal(np1, np2)
        assert similar(np1, np3) and equal(np1, np3)

    def test_symbolic_flags(self):
        assert path([], EPSILON).is_symbolic
        assert path([], "x").is_concrete

    def test_as_symbolic(self):
        concrete = path([("A", 0)], "x")
        assert concrete.as_symbolic().end is EPSILON
        assert concrete.as_symbolic().prefix == concrete.prefix

    def test_str_renders_epsilon(self):
        assert str(path([("A", 0)], EPSILON)).endswith("ε")


class TestExtraction:
    def test_extracts_one_path_per_leaf(self):
        tree = node(
            "Assign",
            node("NameStore", terminal("Ident", "x")),
            node("NameLoad", terminal("Ident", "y")),
        )
        paths = extract_name_paths(tree)
        assert len(paths) == 2
        assert paths[0].end == "x" and paths[1].end == "y"

    def test_all_concrete(self):
        t = transform_statement(parse_statement("self.assertTrue(a.b, 90)"))
        for p in extract_name_paths(t):
            assert p.is_concrete

    def test_prefixes_all_distinct(self):
        t = transform_statement(parse_statement("self.assertTrue(a.b, 90)"))
        paths = extract_name_paths(t)
        assert len({p.prefix for p in paths}) == len(paths)

    def test_max_paths(self):
        t = transform_statement(parse_statement("f(a, b, c, d, e, g, h)"))
        assert len(extract_name_paths(t, max_paths=3)) == 3

    def test_deterministic_order(self):
        t = transform_statement(parse_statement("self.assertTrue(a.b, 90)"))
        assert [str(p) for p in extract_name_paths(t)] == [
            str(p) for p in extract_name_paths(t)
        ]

    def test_indices_address_children(self):
        tree = node("P", terminal("Ident", "a"), terminal("Ident", "b"))
        paths = extract_name_paths(tree)
        assert paths[0].prefix[0].index == 0
        assert paths[1].prefix[0].index == 1

    def test_paths_by_prefix(self):
        t = transform_statement(parse_statement("x = y"))
        paths = extract_name_paths(t)
        index = paths_by_prefix(paths)
        assert len(index) == len(paths)
        for p in paths:
            assert index[p.prefix] is p


@st.composite
def random_trees(draw, depth=0):
    """Random small trees for property tests."""
    if depth >= 3 or draw(st.booleans()):
        return terminal("Ident", draw(st.text("abc", min_size=1, max_size=3)))
    children = draw(st.lists(random_trees(depth=depth + 1), min_size=1, max_size=3))
    return node(draw(st.sampled_from(["A", "B", "C"])), *children)


class TestExtractionProperties:
    @given(random_trees())
    def test_path_count_equals_leaf_count(self, tree):
        leaves = sum(1 for n in tree.walk() if n.is_terminal)
        assert len(extract_name_paths(tree)) == leaves

    @given(random_trees())
    def test_prefix_distinctness_property(self, tree):
        paths = extract_name_paths(tree)
        assert len({p.prefix for p in paths}) == len(paths)

    @given(random_trees())
    def test_each_path_resolves_to_its_leaf(self, tree):
        for p in extract_name_paths(tree):
            current = tree
            for step in p.prefix:
                assert current.value == step.value
                current = current.children[step.index]
            assert current.value == p.end
