"""Tests for the resilience subsystem (`repro.resilience`).

Covers the fault-injection harness itself, per-file quarantine through
mining, atomic writes and checksummed checkpoints, byte-identical
``--resume``, retry/backoff + circuit breaker, and degraded-mode
serving — the failure paths a clean CI box never exercises naturally.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.namer import Namer, NamerConfig
from repro.core.persistence import save_namer
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointStore,
    atomic_write_text,
    document_checksum,
)
from repro.resilience.faults import (
    FAULTS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.resilience.pipeline import run_mine_pipeline
from repro.resilience.quarantine import ErrorRecord, Quarantine
from repro.resilience.retry import CircuitBreaker, CircuitOpenError, RetryPolicy

from tests.conftest import SMALL_MINING


# ----------------------------------------------------------------------
# Fault injection harness
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_disarmed_check_is_a_noop(self):
        assert FAULTS.plan is None
        FAULTS.check("any.site", key="any-key")  # must not raise

    def test_rate_one_always_trips(self):
        plan = FaultPlan([FaultSpec(site="s")])
        with pytest.raises(InjectedFault) as exc:
            plan.fire("s", key="k")
        assert exc.value.site == "s" and exc.value.key == "k"

    def test_other_sites_unaffected(self):
        plan = FaultPlan([FaultSpec(site="s")])
        plan.fire("other.site", key="k")  # no matching spec: no-op

    def test_partial_rate_is_deterministic_across_instances(self):
        keys = [f"file_{i}.py" for i in range(400)]
        a = FaultPlan([FaultSpec(site="s", rate=0.1)], seed=3)
        b = FaultPlan([FaultSpec(site="s", rate=0.1)], seed=3)
        tripped_a = {k for k in keys if a.would_trip("s", k)}
        tripped_b = {k for k in keys if b.would_trip("s", k)}
        assert tripped_a == tripped_b
        # roughly the requested fraction, and seed-dependent
        assert 10 <= len(tripped_a) <= 90
        c = FaultPlan([FaultSpec(site="s", rate=0.1)], seed=4)
        assert {k for k in keys if c.would_trip("s", k)} != tripped_a

    def test_max_trips_budget(self):
        plan = FaultPlan([FaultSpec(site="s", max_trips=2)])
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.fire("s")
        plan.fire("s")  # budget spent: no-op
        assert plan.total_trips == 2
        assert plan.trips_for("s") == 2

    def test_match_filters_keys(self):
        plan = FaultPlan([FaultSpec(site="s", match="bad")])
        plan.fire("s", key="good.py")
        with pytest.raises(InjectedFault):
            plan.fire("s", key="bad.py")

    def test_raises_kinds(self):
        for kind, exc_type in (
            ("os", OSError),
            ("value", ValueError),
            ("timeout", TimeoutError),
        ):
            plan = FaultPlan([FaultSpec(site="s", raises=kind)])
            with pytest.raises(exc_type):
                plan.fire("s")

    def test_delay_only_spec_does_not_raise(self):
        plan = FaultPlan([FaultSpec(site="s", delay=0.001, raises=None)])
        plan.fire("s")
        assert plan.total_trips == 1

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(site="s", rate=0.25, max_trips=3, match="x", delay=0.5)],
            seed=11,
        )
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_json()))
        loaded = FaultPlan.load(path)
        assert loaded.seed == 11
        assert loaded.specs == plan.specs

    def test_armed_context_restores_previous_plan(self):
        assert FAULTS.plan is None
        with FAULTS.armed(FaultPlan([FaultSpec(site="s")])):
            with pytest.raises(InjectedFault):
                FAULTS.check("s")
        assert FAULTS.plan is None
        FAULTS.check("s")  # disarmed again


class TestQuarantine:
    def test_capture_and_describe(self):
        q = Quarantine()
        record = q.capture("a.py", "parse", ValueError("boom"), repo="r")
        assert record.kind == "ValueError"
        assert "a.py" in record.describe() and "parse" in record.describe()
        assert record.brief() == "parse failed: boom"
        assert len(q) == 1 and q.paths() == ["a.py"]

    def test_bounded_records_count_everything(self):
        q = Quarantine(max_records=5)
        for i in range(20):
            q.add(ErrorRecord(path=f"{i}.py", stage="parse", kind="E", message="m"))
        assert len(q) == 20
        assert len(q.records) == 5
        body = q.to_json()
        assert body["total"] == 20 and body["truncated"] is True

    def test_thread_safe_adds(self):
        q = Quarantine(max_records=10_000)

        def add_many():
            for i in range(500):
                q.capture(f"{i}.py", "detect", RuntimeError("x"))

        threads = [threading.Thread(target=add_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(q) == 2000


# ----------------------------------------------------------------------
# Quarantine through mining (the acceptance drill: 10% parse faults)
# ----------------------------------------------------------------------


class TestMiningQuarantine:
    def test_mine_quarantines_exactly_the_faulted_files(self, small_corpus):
        plan = FaultPlan(
            [FaultSpec(site="corpus.prepare_file", rate=0.1)], seed=21
        )
        expected = {
            source.path
            for _, source in small_corpus.files()
            if plan.would_trip("corpus.prepare_file", source.path)
        }
        assert expected, "plan must fault at least one file for this test"
        namer = Namer(NamerConfig(mining=SMALL_MINING))
        with FAULTS.armed(plan):
            summary = namer.mine(small_corpus)
        assert summary.quarantined_files == len(expected)
        assert set(namer.quarantine.paths()) == expected
        assert all(r.stage == "parse" for r in namer.quarantine.records)
        # the run still completed: every healthy file was mined
        total = sum(1 for _ in small_corpus.files())
        assert summary.total_files == total - len(expected)
        assert summary.num_patterns > 0

    def test_mine_without_faults_quarantines_nothing(self, fitted_namer):
        assert len(fitted_namer.quarantine) == 0

    def test_detect_many_quarantines_failing_file(self, fitted_namer, small_corpus):
        from repro.core.prepare import prepare_file

        files = [source for _, source in small_corpus.files()][:3]
        prepared = [prepare_file(f, repo="t") for f in files]
        prepared = [p for p in prepared if p is not None]
        assert prepared
        plan = FaultPlan(
            [FaultSpec(site="core.detect", match=prepared[0].path)]
        )
        q = Quarantine()
        with FAULTS.armed(plan):
            groups = fitted_namer.detect_many(prepared, quarantine=q)
        assert len(groups) == len(prepared)
        assert groups[0] == []
        assert q.paths() == [prepared[0].path]

    def test_detect_many_without_quarantine_still_raises(
        self, fitted_namer, small_corpus
    ):
        from repro.core.prepare import prepare_file

        source = next(s for _, s in small_corpus.files())
        prepared = prepare_file(source, repo="t")
        plan = FaultPlan([FaultSpec(site="core.detect")])
        with FAULTS.armed(plan):
            with pytest.raises(InjectedFault):
                fitted_namer.detect_many([prepared])


# ----------------------------------------------------------------------
# Atomic writes and checksummed checkpoints
# ----------------------------------------------------------------------


class TestAtomicWrite:
    def test_replaces_content(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_failed_write_leaves_old_bytes_and_no_temp(self, tmp_path):
        path = tmp_path / "f.json"
        atomic_write_text(path, "precious")
        plan = FaultPlan([FaultSpec(site="checkpoint.save", raises="os")])
        store = CheckpointStore(tmp_path)
        with FAULTS.armed(plan):
            with pytest.raises(OSError):
                store.save("f", {"x": 1})
        assert path.read_text() == "precious"
        assert not list(tmp_path.glob("*.tmp"))


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        payload = {"numbers": [1, 2, 3], "nested": {"a": 0.5}}
        store.save("mine", payload)
        assert store.has("mine")
        assert store.load("mine") == payload

    def test_missing_stage_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load("nope") is None

    def test_tampered_payload_fails_verification(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("mine", {"x": 1})
        doc = json.loads(path.read_text())
        doc["payload"]["x"] = 2
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="SHA-256"):
            store.load("mine")

    def test_invalid_json_is_an_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path_for("mine").parent.mkdir(parents=True, exist_ok=True)
        store.path_for("mine").write_text("{torn")
        with pytest.raises(CheckpointError, match="JSON"):
            store.load("mine")

    def test_clear_removes_checkpoints(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save("mine", {"x": 1})
        store.save("train", {"y": 2})
        assert store.clear() == 2
        assert not (tmp_path / "ckpt").exists()

    def test_document_checksum_ignores_order_and_own_stamp(self):
        a = {"x": 1, "y": [2, 3]}
        b = {"y": [2, 3], "x": 1, "checksum": "whatever"}
        assert document_checksum(a) == document_checksum(b)
        assert document_checksum({"x": 2, "y": [2, 3]}) != document_checksum(a)


# ----------------------------------------------------------------------
# Checkpoint/resume: interrupted runs resume byte-identically
# ----------------------------------------------------------------------


def _corpus_factory():
    return generate_python_corpus(
        GeneratorConfig(num_repos=8, issue_rate=0.15, seed=42)
    )


_PIPELINE_KWARGS = dict(
    corpus_factory=_corpus_factory,
    namer_config=NamerConfig(mining=SMALL_MINING),
    training_size=80,
    seed=5,
)


@pytest.fixture(scope="module")
def baseline_artifact(tmp_path_factory):
    """One uninterrupted pipeline run; resumed runs must match its bytes."""
    out = tmp_path_factory.mktemp("pipeline") / "baseline.json"
    result = run_mine_pipeline(out=out, **_PIPELINE_KWARGS)
    assert result.resumed_stages == []
    return out.read_bytes()


class TestCheckpointResume:
    def test_uninterrupted_run_leaves_no_checkpoints(
        self, tmp_path, baseline_artifact
    ):
        out = tmp_path / "namer.json"
        run_mine_pipeline(out=out, **_PIPELINE_KWARGS)
        assert not (tmp_path / "namer.json.ckpt").exists()
        assert out.read_bytes() == baseline_artifact

    def test_resume_after_kill_past_training(self, tmp_path, baseline_artifact):
        out = tmp_path / "namer.json"
        plan = FaultPlan([FaultSpec(site="pipeline.after_train", max_trips=1)])
        with FAULTS.armed(plan):
            with pytest.raises(InjectedFault):
                run_mine_pipeline(out=out, **_PIPELINE_KWARGS)
        assert not out.exists()  # killed before the final save

        messages = []
        result = run_mine_pipeline(
            out=out, resume=True, log=messages.append, **_PIPELINE_KWARGS
        )
        assert result.resumed_stages == ["train"]
        assert any("resumed" in m for m in messages)
        assert out.read_bytes() == baseline_artifact
        assert not (tmp_path / "namer.json.ckpt").exists()  # cleaned up

    def test_resume_after_kill_past_mining(self, tmp_path, baseline_artifact):
        out = tmp_path / "namer.json"
        plan = FaultPlan([FaultSpec(site="pipeline.after_mine", max_trips=1)])
        with FAULTS.armed(plan):
            with pytest.raises(InjectedFault):
                run_mine_pipeline(out=out, **_PIPELINE_KWARGS)
        assert not out.exists()

        result = run_mine_pipeline(out=out, resume=True, **_PIPELINE_KWARGS)
        assert result.resumed_stages == ["mine"]
        assert out.read_bytes() == baseline_artifact

    def test_corrupt_checkpoint_is_ignored_not_trusted(
        self, tmp_path, baseline_artifact
    ):
        out = tmp_path / "namer.json"
        ckpt_dir = tmp_path / "namer.json.ckpt"
        plan = FaultPlan([FaultSpec(site="pipeline.after_train", max_trips=1)])
        with FAULTS.armed(plan):
            with pytest.raises(InjectedFault):
                run_mine_pipeline(out=out, **_PIPELINE_KWARGS)
        # Tear the train checkpoint; resume must fall back to re-running
        # (via the still-valid mine checkpoint), never continue from it.
        train = ckpt_dir / "train.ckpt.json"
        train.write_text(train.read_text()[: train.stat().st_size // 2])
        messages = []
        result = run_mine_pipeline(
            out=out, resume=True, log=messages.append, **_PIPELINE_KWARGS
        )
        assert result.resumed_stages == ["mine"]
        assert any("unusable checkpoint" in m for m in messages)
        assert out.read_bytes() == baseline_artifact

    def test_resume_without_checkpoints_runs_fresh(self, tmp_path, baseline_artifact):
        out = tmp_path / "namer.json"
        result = run_mine_pipeline(out=out, resume=True, **_PIPELINE_KWARGS)
        assert result.resumed_stages == []
        assert out.read_bytes() == baseline_artifact

    def test_final_artifact_loads(self, tmp_path, baseline_artifact):
        from repro.core.persistence import load_namer

        out = tmp_path / "namer.json"
        out.write_bytes(baseline_artifact)
        namer = load_namer(out)
        assert namer.matcher is not None and namer.matcher.patterns


# ----------------------------------------------------------------------
# Retry policy and circuit breaker
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_seeded_delays_are_reproducible(self):
        a = RetryPolicy(max_attempts=5, base_delay=0.1, seed=9).delays()
        b = RetryPolicy(max_attempts=5, base_delay=0.1, seed=9).delays()
        assert a == b and len(a) == 4

    def test_delays_grow_and_cap(self):
        delays = RetryPolicy(
            max_attempts=8, base_delay=1.0, multiplier=2.0,
            max_delay=5.0, jitter=0.0,
        ).delays()
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0, 5.0, 5.0]

    def test_jitter_stays_within_band(self):
        for delay, raw in zip(
            RetryPolicy(max_attempts=6, base_delay=1.0, jitter=0.5,
                        max_delay=100.0, seed=1).delays(),
            [1.0, 2.0, 4.0, 8.0, 16.0],
        ):
            assert raw * 0.5 <= delay <= raw


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.allow() and breaker.state == breaker.CLOSED
        breaker.record_failure()
        assert not breaker.allow() and breaker.state == breaker.OPEN
        assert breaker.opens == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == breaker.CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow() and breaker.state == breaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == breaker.CLOSED

    def test_half_open_probe_reopens_on_failure(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10, clock=clock)
        breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == breaker.OPEN and breaker.opens == 2
        assert not breaker.allow()


# ----------------------------------------------------------------------
# Degraded-mode serving and client retries (end to end)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def healthy_artifact(fitted_namer, tmp_path_factory):
    path = tmp_path_factory.mktemp("resilience") / "namer.json"
    save_namer(fitted_namer, path)
    return path


def _corrupt_classifier_section(src, dst):
    doc = json.loads(src.read_text())
    doc["classifier"] = {"scaler_mean": "garbage"}
    del doc["checksum"]
    doc["checksum"] = document_checksum(doc)
    dst.write_text(json.dumps(doc))


@pytest.mark.service
class TestDegradedServing:
    def test_corrupt_classifier_serves_pattern_only(
        self, healthy_artifact, tmp_path, small_corpus
    ):
        from repro.service.client import HttpClient
        from repro.service.engine import AnalysisEngine
        from repro.service.server import AnalysisServer

        broken = tmp_path / "broken.json"
        _corrupt_classifier_section(healthy_artifact, broken)
        engine = AnalysisEngine(artifact_path=str(broken), workers=1)
        server = AnalysisServer(engine, port=0).start()
        try:
            client = HttpClient(server.url, timeout=30)
            health = client.health()
            assert health["status"] == "degraded"
            assert health["degraded"] is True
            assert health["degraded_reasons"]
            assert health["classifier"] is False
            # every analyze answers 200, flagged degraded, never a 500
            for _, source in list(small_corpus.files())[:3]:
                result = client.analyze(source.source, path=source.path)
                assert result["degraded"] is True
                assert result["error"] is None
            assert client.metrics()["degraded"] is True
        finally:
            server.stop(drain=False)

    def test_strict_engine_refuses_corrupt_artifact(
        self, healthy_artifact, tmp_path
    ):
        from repro.core.persistence import PersistenceError
        from repro.service.engine import AnalysisEngine

        broken = tmp_path / "broken.json"
        _corrupt_classifier_section(healthy_artifact, broken)
        with pytest.raises(PersistenceError):
            AnalysisEngine(artifact_path=str(broken), workers=1, degraded_ok=False)

    def test_reload_into_and_out_of_degraded(self, healthy_artifact, tmp_path):
        from repro.service.engine import AnalysisEngine

        broken = tmp_path / "broken.json"
        _corrupt_classifier_section(healthy_artifact, broken)
        engine = AnalysisEngine(artifact_path=str(healthy_artifact), workers=1)
        try:
            assert engine.degraded is False
            assert engine.reload(str(broken))["degraded"] is True
            assert engine.health()["status"] == "degraded"
            assert engine.reload(str(healthy_artifact))["degraded"] is False
            assert engine.health()["status"] == "ok"
        finally:
            engine.shutdown(drain=False)


@pytest.mark.service
class TestClientRetries:
    def test_transient_fault_is_retried_and_counted(self, healthy_artifact):
        from repro.service.client import HttpClient
        from repro.service.engine import AnalysisEngine
        from repro.service.server import AnalysisServer

        engine = AnalysisEngine(artifact_path=str(healthy_artifact), workers=1)
        server = AnalysisServer(engine, port=0).start()
        try:
            client = HttpClient(
                server.url,
                timeout=30,
                retry=RetryPolicy(max_attempts=3, base_delay=0.01, seed=1),
            )
            plan = FaultPlan(
                [FaultSpec(site="client.request", match="/health", max_trips=1)]
            )
            with FAULTS.armed(plan):
                health = client.health()
            assert health["status"] in ("ok", "degraded")
            assert client.stats.retries == 1
            assert client.stats.attempts == 2
            # the server saw the retry via the X-Repro-Retry header
            assert client.metrics()["retried_requests"] >= 1
        finally:
            server.stop(drain=False)

    def test_retry_budget_exhausted_raises_last_error(self):
        from repro.service.client import HttpClient

        sleeps = []
        client = HttpClient(
            "http://example.invalid",
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, seed=1),
            sleep=sleeps.append,
        )
        plan = FaultPlan([FaultSpec(site="client.request")])
        with FAULTS.armed(plan):
            with pytest.raises(InjectedFault):
                client.health()
        assert client.stats.attempts == 3
        assert client.stats.retries == 2
        assert len(sleeps) == 2

    def test_circuit_opens_against_a_dead_server(self):
        from repro.service.client import HttpClient

        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60)
        client = HttpClient(
            "http://example.invalid",
            retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0),
            breaker=breaker,
            sleep=lambda _s: None,
        )
        plan = FaultPlan([FaultSpec(site="client.request")])
        with FAULTS.armed(plan):
            with pytest.raises(CircuitOpenError):
                client.health()
        assert breaker.state == breaker.OPEN
        assert client.stats.circuit_rejections == 1
        assert client.stats.attempts == 2  # breaker stopped the rest

    def test_load_paths_skips_undecodable_files(self, tmp_path, capsys):
        from repro.service.client import load_paths

        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        bad = tmp_path / "bad.py"
        bad.write_bytes(b"\xff\xfe\x00junk")
        entries = load_paths([good, bad])
        assert [e["path"] for e in entries] == [str(good)]
        assert "cannot read" in capsys.readouterr().err

    def test_4xx_is_not_retried(self, healthy_artifact):
        from repro.service.client import HttpClient, ServiceError
        from repro.service.engine import AnalysisEngine
        from repro.service.server import AnalysisServer

        engine = AnalysisEngine(artifact_path=str(healthy_artifact), workers=1)
        server = AnalysisServer(engine, port=0).start()
        try:
            client = HttpClient(server.url, timeout=30)
            with pytest.raises(ServiceError) as exc:
                client._call("GET", "/nope")
            assert exc.value.status == 404
            assert client.stats.attempts == 1
            assert client.stats.retries == 0
        finally:
            server.stop(drain=False)


# ----------------------------------------------------------------------
# Engine quarantine surfacing
# ----------------------------------------------------------------------


@pytest.mark.service
class TestEngineQuarantine:
    def test_injected_prepare_fault_becomes_error_result(self, fitted_namer):
        from repro.service.engine import AnalysisEngine, AnalysisRequest

        engine = AnalysisEngine(namer=fitted_namer, workers=1)
        try:
            plan = FaultPlan([FaultSpec(site="engine.prepare", match="hit.py")])
            with FAULTS.armed(plan):
                results = engine.analyze_many(
                    [
                        AnalysisRequest(source="x = 1\n", path="hit.py"),
                        AnalysisRequest(source="y = 2\n", path="miss.py"),
                    ]
                )
            by_path = {r.path: r for r in results}
            assert by_path["hit.py"].error is not None
            assert by_path["miss.py"].error is None
            assert engine.metrics.quarantined_files >= 1
            assert engine.metrics_json()["quarantined_files"] >= 1
        finally:
            engine.shutdown(drain=False)
