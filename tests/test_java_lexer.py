"""Tests for the Java lexer."""

import pytest

from repro.lang.java.lexer import JavaLexError, Token, TokenKind, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestBasics:
    def test_identifiers_and_keywords(self):
        assert kinds("public class Foo") == [
            (TokenKind.KEYWORD, "public"),
            (TokenKind.KEYWORD, "class"),
            (TokenKind.IDENT, "Foo"),
        ]

    def test_contextual_keywords_are_identifiers(self):
        for word in ("record", "var", "yield", "sealed"):
            assert kinds(word)[0][0] is TokenKind.IDENT

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_dollar_identifiers(self):
        assert kinds("$var _x")[0] == (TokenKind.IDENT, "$var")


class TestNumbers:
    @pytest.mark.parametrize(
        "text, kind",
        [
            ("42", TokenKind.INT),
            ("42L", TokenKind.INT),
            ("0xFF", TokenKind.INT),
            ("0b1010", TokenKind.INT),
            ("1_000_000", TokenKind.INT),
            ("3.14", TokenKind.FLOAT),
            ("1e10", TokenKind.FLOAT),
            ("2.5e-3", TokenKind.FLOAT),
            ("1.0f", TokenKind.FLOAT),
            ("4d", TokenKind.FLOAT),
        ],
    )
    def test_literals(self, text, kind):
        token = tokenize(text)[0]
        assert token.kind is kind and token.text == text

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].kind is TokenKind.FLOAT


class TestStringsAndChars:
    def test_string(self):
        token = tokenize('"hello world"')[0]
        assert token.kind is TokenKind.STRING and token.text == "hello world"

    def test_escaped_quote(self):
        token = tokenize(r'"a\"b"')[0]
        assert token.kind is TokenKind.STRING

    def test_char(self):
        token = tokenize("'x'")[0]
        assert token.kind is TokenKind.CHAR and token.text == "x"

    def test_text_block(self):
        token = tokenize('"""line1\nline2"""')[0]
        assert token.kind is TokenKind.STRING and "line1" in token.text

    def test_unterminated_string(self):
        with pytest.raises(JavaLexError):
            tokenize('"open')


class TestOperatorsAndComments:
    def test_longest_match(self):
        texts = [t.text for t in tokenize("a >>>= b >>> c >> d > e")[:-1]]
        assert ">>>=" in texts and ">>>" in texts and ">>" in texts

    def test_arrow_and_method_ref(self):
        texts = [t.text for t in tokenize("x -> y::z")[:-1]]
        assert "->" in texts and "::" in texts

    def test_line_comment_skipped(self):
        assert kinds("a // comment\nb") == [
            (TokenKind.IDENT, "a"),
            (TokenKind.IDENT, "b"),
        ]

    def test_block_comment_skipped(self):
        assert len(kinds("a /* x\ny */ b")) == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(JavaLexError):
            tokenize("/* open")

    def test_unexpected_character(self):
        with pytest.raises(JavaLexError):
            tokenize("a # b")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]


class TestTokenHelpers:
    def test_is_kw(self):
        token = Token(TokenKind.KEYWORD, "class", 1, 1)
        assert token.is_kw("class", "enum")
        assert not token.is_kw("enum")

    def test_is_op_and_sep(self):
        op = Token(TokenKind.OPERATOR, "+", 1, 1)
        sep = Token(TokenKind.SEPARATOR, "(", 1, 1)
        assert op.is_op("+", "-") and not op.is_op("-")
        assert sep.is_sep("(") and not sep.is_sep(")")
