"""Tests for the anchor-indexed pattern matcher."""

from repro.core.namepath import extract_name_paths
from repro.core.patterns import PatternKind, Relation, check_pattern
from repro.core.transform import transform_statement
from repro.lang.python_frontend import parse_statement
from repro.mining.matcher import PatternMatcher
from repro.mining.miner import MiningConfig, PatternMiner


def build_world():
    names = ["user", "record", "packet", "widget"]
    stmts = [
        transform_statement(
            parse_statement(f"self.assertEqual({n}.size, {i})"),
            origins={"self": "TestCase"},
        )
        for i, n in enumerate(names * 10)
    ]
    miner = PatternMiner(
        MiningConfig(min_pattern_support=5, min_path_frequency=4),
        confusing_pairs=[("True", "Equal")],
    )
    patterns = miner.mine(stmts, PatternKind.CONFUSING_WORD).patterns
    return stmts, patterns


class TestPatternMatcher:
    def test_candidates_complete(self):
        """The anchor filter must never miss a matching pattern."""
        stmts, patterns = build_world()
        matcher = PatternMatcher(patterns)
        for stmt in stmts[:10]:
            paths = extract_name_paths(stmt, max_paths=10)
            brute = {
                id(p)
                for p in patterns
                if check_pattern(p, paths) is not Relation.NO_MATCH
            }
            filtered = {id(p) for p in matcher.candidates(paths)}
            assert brute <= filtered

    def test_check_all_excludes_no_match(self):
        stmts, patterns = build_world()
        matcher = PatternMatcher(patterns)
        paths = extract_name_paths(stmts[0], max_paths=10)
        for _, relation in matcher.check_all(paths):
            assert relation is not Relation.NO_MATCH

    def test_len(self):
        _, patterns = build_world()
        assert len(PatternMatcher(patterns)) == len(patterns)

    def test_merge(self):
        _, patterns = build_world()
        a = PatternMatcher(patterns[: len(patterns) // 2])
        b = PatternMatcher(patterns[len(patterns) // 2 :])
        merged = PatternMatcher.merge([a, b])
        assert len(merged) == len(patterns)

    def test_empty_matcher(self):
        matcher = PatternMatcher([])
        stmt = transform_statement(parse_statement("x = 1"))
        assert matcher.violations(stmt, extract_name_paths(stmt)) == []
