"""Tests for the anchor-indexed pattern matcher."""

from collections import Counter

from repro.core.namepath import extract_name_paths
from repro.core.patterns import PatternKind, Relation, check_pattern
from repro.core.transform import transform_statement
from repro.lang.python_frontend import parse_statement
from repro.mining.matcher import PatternMatcher, prefix_frequencies
from repro.mining.miner import MiningConfig, PatternMiner


def build_world():
    names = ["user", "record", "packet", "widget"]
    stmts = [
        transform_statement(
            parse_statement(f"self.assertEqual({n}.size, {i})"),
            origins={"self": "TestCase"},
        )
        for i, n in enumerate(names * 10)
    ]
    miner = PatternMiner(
        MiningConfig(min_pattern_support=5, min_path_frequency=4),
        confusing_pairs=[("True", "Equal")],
    )
    patterns = miner.mine(stmts, PatternKind.CONFUSING_WORD).patterns
    return stmts, patterns


class TestPatternMatcher:
    def test_candidates_complete(self):
        """The anchor filter must never miss a matching pattern."""
        stmts, patterns = build_world()
        matcher = PatternMatcher(patterns)
        for stmt in stmts[:10]:
            paths = extract_name_paths(stmt, max_paths=10)
            brute = {
                id(p)
                for p in patterns
                if check_pattern(p, paths) is not Relation.NO_MATCH
            }
            filtered = {id(p) for p in matcher.candidates(paths)}
            assert brute <= filtered

    def test_check_all_excludes_no_match(self):
        stmts, patterns = build_world()
        matcher = PatternMatcher(patterns)
        paths = extract_name_paths(stmts[0], max_paths=10)
        for _, relation in matcher.check_all(paths):
            assert relation is not Relation.NO_MATCH

    def test_len(self):
        _, patterns = build_world()
        assert len(PatternMatcher(patterns)) == len(patterns)

    def test_merge(self):
        _, patterns = build_world()
        a = PatternMatcher(patterns[: len(patterns) // 2])
        b = PatternMatcher(patterns[len(patterns) // 2 :])
        merged = PatternMatcher.merge([a, b])
        assert len(merged) == len(patterns)

    def test_empty_matcher(self):
        matcher = PatternMatcher([])
        stmt = transform_statement(parse_statement("x = 1"))
        assert matcher.violations(stmt, extract_name_paths(stmt)) == []


class TestSelectivityIndex:
    def test_rarest_prefix_anchoring(self):
        """With a corpus frequency table, every pattern must be anchored
        at its rarest (lowest-count, ties lexicographic) deduction
        prefix rather than the lexicographic minimum."""
        stmts, patterns = build_world()
        path_lists = [extract_name_paths(s, max_paths=10) for s in stmts]
        counts = prefix_frequencies(path_lists)
        matcher = PatternMatcher(patterns, prefix_counts=counts)
        anchor_of = {
            idx: anchor
            for anchor, bucket in matcher._by_anchor.items()
            for idx in bucket
        }
        for idx, pattern in enumerate(patterns):
            expected = min(
                (d.prefix for d in pattern.deduction),
                key=lambda p: (counts.get(p, 0), p),
            )
            assert anchor_of[idx] == expected

    def test_fallback_rarity_is_pattern_frequency(self):
        """Without corpus counts the matcher's own deduction-prefix
        frequency table decides anchors."""
        _, patterns = build_world()
        matcher = PatternMatcher(patterns)
        expected = Counter(
            d.prefix for p in patterns for d in p.deduction
        )
        assert matcher.prefix_counts == expected

    def test_guard_keeps_all_matches(self):
        """The step-kind bitmask guard may reject candidates but must
        never reject a pattern that actually matches."""
        stmts, patterns = build_world()
        matcher = PatternMatcher(patterns)
        for stmt in stmts[:10]:
            paths = extract_name_paths(stmt, max_paths=10)
            brute = {
                id(p)
                for p in patterns
                if check_pattern(p, paths) is not Relation.NO_MATCH
            }
            filtered = {id(p) for p in matcher.candidates(paths)}
            assert brute <= filtered

    def test_enumeration_order_is_anchor_independent(self):
        """Candidate order is part of the artifact-bytes contract: a
        matcher with corpus-tuned anchors must enumerate the surviving
        candidates of every statement in the same order as one with
        fallback anchors, and any candidate either filter drops must be
        a NO_MATCH."""
        stmts, patterns = build_world()
        path_lists = [extract_name_paths(s, max_paths=10) for s in stmts]
        plain = PatternMatcher(patterns)
        tuned = PatternMatcher(
            patterns, prefix_counts=prefix_frequencies(path_lists)
        )
        for paths in path_lists:
            plain_idx = list(plain.candidate_indices(paths))
            tuned_idx = list(tuned.candidate_indices(paths))
            common = [i for i in plain_idx if i in set(tuned_idx)]
            assert common == [i for i in tuned_idx if i in set(plain_idx)]
            for only_one_side in set(plain_idx) ^ set(tuned_idx):
                assert (
                    check_pattern(patterns[only_one_side], paths)
                    is Relation.NO_MATCH
                )

    def test_merge_equals_flat_build(self):
        """merge(shards) must reproduce a flat build exactly — anchors,
        frequency tables, and per-statement candidate order — without
        recounting from the pattern list."""
        stmts, patterns = build_world()
        path_lists = [extract_name_paths(s, max_paths=10) for s in stmts]
        flat = PatternMatcher(patterns)
        cut_a, cut_b = len(patterns) // 3, 2 * len(patterns) // 3
        merged = PatternMatcher.merge(
            [
                PatternMatcher(patterns[:cut_a]),
                PatternMatcher(patterns[cut_a:cut_b]),
                PatternMatcher(patterns[cut_b:]),
            ]
        )
        assert merged.prefix_counts == flat.prefix_counts
        assert list(merged.prefix_counts) == list(flat.prefix_counts)
        assert merged._by_anchor == flat._by_anchor
        for paths in path_lists:
            assert list(merged.candidate_indices(paths)) == list(
                flat.candidate_indices(paths)
            )

    def test_merge_sums_corpus_tables(self):
        """Shards built over one corpus table merge to the same anchor
        choices as a flat build over that table (rarity order is
        scale-invariant under summation of identical tables)."""
        stmts, patterns = build_world()
        counts = prefix_frequencies(
            extract_name_paths(s, max_paths=10) for s in stmts
        )
        flat = PatternMatcher(patterns, prefix_counts=counts)
        half = len(patterns) // 2
        merged = PatternMatcher.merge(
            [
                PatternMatcher(patterns[:half], prefix_counts=counts),
                PatternMatcher(patterns[half:], prefix_counts=counts),
            ]
        )
        assert merged._by_anchor == flat._by_anchor

    def test_duplicate_prefix_orders_at_first_occurrence(self):
        """A prefix appearing at two statement positions must order its
        patterns at the earliest one, as plain path iteration did."""
        stmts, patterns = build_world()
        matcher = PatternMatcher(patterns)
        paths = extract_name_paths(stmts[0], max_paths=10)
        doubled = list(paths) + list(paths)
        assert list(matcher.candidate_indices(doubled)) == list(
            matcher.candidate_indices(paths)
        )
