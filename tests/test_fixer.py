"""Tests for fix application."""

import pytest

from repro.core.fixer import apply_fix, apply_fixes


@pytest.fixture(scope="module")
def assert_report(fitted_namer):
    reports = fitted_namer.classify(fitted_namer.all_violations())
    for report in reports:
        if report.observed in ("True", "Equals"):
            return report
    pytest.skip("no assert report in this corpus sample")


class TestApplyFix:
    def test_applies_on_reported_line(self, small_corpus, assert_report):
        files = {f.path: f.source for _, f in small_corpus.files()}
        source = files[assert_report.file_path]
        result = apply_fix(source, assert_report)
        assert result.applied
        fixed_line = result.source.splitlines()[assert_report.line - 1]
        assert "assertEqual" in fixed_line
        assert "assertTrue" not in fixed_line or assert_report.observed == "Equals"

    def test_only_one_line_changes(self, small_corpus, assert_report):
        files = {f.path: f.source for _, f in small_corpus.files()}
        source = files[assert_report.file_path]
        result = apply_fix(source, assert_report)
        before_lines = source.splitlines()
        after_lines = result.source.splitlines()
        diffs = [
            i for i, (a, b) in enumerate(zip(before_lines, after_lines)) if a != b
        ]
        assert diffs == [assert_report.line - 1]

    def test_missing_identifier_not_applied(self, assert_report):
        result = apply_fix("x = 1\n" * 50, assert_report)
        assert not result.applied
        assert result.source == "x = 1\n" * 50

    def test_out_of_range_line(self, assert_report):
        result = apply_fix("x = 1\n", assert_report)
        assert not result.applied

    def test_diff_rendering(self, small_corpus, assert_report):
        files = {f.path: f.source for _, f in small_corpus.files()}
        result = apply_fix(files[assert_report.file_path], assert_report)
        diff = result.diff()
        assert diff.startswith("@@")
        assert "-" in diff and "+" in diff

    def test_unapplied_diff_empty(self, assert_report):
        assert apply_fix("y = 2\n", assert_report).diff() == ""


class TestApplyFixes:
    def test_multiple_reports_one_file(self, small_corpus, fitted_namer):
        reports = fitted_namer.classify(fitted_namer.all_violations())
        by_file = {}
        for report in reports:
            by_file.setdefault(report.file_path, []).append(report)
        path, file_reports = max(by_file.items(), key=lambda kv: len(kv[1]))
        files = {f.path: f.source for _, f in small_corpus.files()}
        fixed, results = apply_fixes(files[path], file_reports)
        assert len(results) == len(file_reports)
        assert any(r.applied for r in results)

    def test_empty_reports(self):
        fixed, results = apply_fixes("x = 1\n", [])
        assert fixed == "x = 1\n" and results == []
