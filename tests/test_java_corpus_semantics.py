"""Java-specific semantic checks over the synthetic corpus: origin
gating (the checker-class mechanism) and fix rendering for Java
conventions."""

import pytest

from repro.core.namer import Namer, NamerConfig
from repro.core.prepare import prepare_file
from repro.corpus.model import SourceFile
from repro.mining.miner import MiningConfig


@pytest.fixture(scope="module")
def java_namer(small_java_corpus):
    namer = Namer(
        NamerConfig(mining=MiningConfig(min_pattern_support=8, min_path_frequency=4))
    )
    namer.mine(small_java_corpus)
    return namer


CHECKER_SOURCE = """
public class RangeChecker {
    private int errors;
    public void assertTrue(int value, int expected) {
        if (value != expected) {
            this.errors += 1;
        }
    }
    public void checkAngle(Record record) {
        this.assertTrue(record.getAngle(), 45);
    }
}
"""

TEST_SOURCE = """
public class AngleTest extends TestCase {
    public void testAngle() {
        Record record = this.buildRecord();
        this.assertEquals(record.getAngle(), 45);
    }
    public void testWidth() {
        Record record = this.buildRecord();
        this.assertTrue(record.getWidth(), 45);
    }
}
"""


class TestOriginGating:
    def test_checker_class_not_flagged(self, java_namer):
        """The custom validator's two-argument assertTrue is correct
        code; the TestCase-origin condition must exclude it."""
        prepared = prepare_file(
            SourceFile(path="RangeChecker.java", source=CHECKER_SOURCE, language="java"),
            repo="x",
        )
        violations = java_namer.violations_in(prepared)
        assert not [v for v in violations if v.observed == "True"]

    def test_testcase_subclass_flagged(self, java_namer):
        prepared = prepare_file(
            SourceFile(path="AngleTest.java", source=TEST_SOURCE, language="java"),
            repo="x",
        )
        violations = java_namer.violations_in(prepared)
        hits = [v for v in violations if v.observed == "True"]
        assert hits and hits[0].suggested == "Equals"
        expected_line = 1 + TEST_SOURCE[: TEST_SOURCE.index("assertTrue")].count("\n")
        assert hits[0].statement.line == expected_line


class TestJavaFixRendering:
    def test_camel_case_java_fix(self, java_namer):
        prepared = prepare_file(
            SourceFile(path="AngleTest.java", source=TEST_SOURCE, language="java"),
            repo="x",
        )
        reports = java_namer.classify(java_namer.violations_in(prepared))
        named = [r for r in reports if r.observed == "True"]
        if not named:
            pytest.skip("classifier filtered the report in this sample")
        assert named[0].fixed_identifier() == "assertEquals"
