"""Cross-cutting property-based tests (hypothesis).

These pin down algebraic invariants of the core abstractions: the
relational operators of Definition 3.4, FP-tree count laws, persistence
round-trips over randomly generated patterns, and transformation
invariants over generated statements.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.core.namepath import EPSILON, NamePath, PathStep, equal, similar
from repro.core.patterns import NamePattern, PatternKind
from repro.core.persistence import _pattern_from_json, _pattern_to_json
from repro.core.transform import transform_statement
from repro.lang.python_frontend import parse_statement
from repro.mining.fptree import FPTree

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

values = st.sampled_from(["Call", "Assign", "Attr", "NumST(2)", "NameLoad", "Origin"])
steps = st.builds(PathStep, value=values, index=st.integers(0, 3))
ends = st.one_of(st.none(), st.sampled_from(["self", "True", "Equal", "x", "NUM"]))
name_paths = st.builds(
    NamePath, prefix=st.lists(steps, min_size=1, max_size=4).map(tuple), end=ends
)
concrete_paths = st.builds(
    NamePath,
    prefix=st.lists(steps, min_size=1, max_size=4).map(tuple),
    end=st.sampled_from(["self", "True", "Equal", "x"]),
)


class TestRelationalOperatorProperties:
    @given(name_paths)
    def test_similar_reflexive(self, p):
        assert similar(p, p)

    @given(name_paths, name_paths)
    def test_similar_symmetric(self, a, b):
        assert similar(a, b) == similar(b, a)

    @given(name_paths)
    def test_equal_reflexive(self, p):
        assert equal(p, p)

    @given(name_paths, name_paths)
    def test_equal_symmetric(self, a, b):
        assert equal(a, b) == equal(b, a)

    @given(name_paths, name_paths)
    def test_equal_implies_similar(self, a, b):
        if equal(a, b):
            assert similar(a, b)

    @given(name_paths)
    def test_epsilon_absorbs(self, p):
        assert equal(p, p.as_symbolic())

    @given(concrete_paths, concrete_paths)
    def test_equal_concrete_means_same_end(self, a, b):
        if equal(a, b):
            assert a.end == b.end


class TestFPTreeProperties:
    @given(st.lists(st.lists(concrete_paths, min_size=1, max_size=4), max_size=20))
    def test_child_counts_bounded_by_parent(self, transactions):
        tree = FPTree()
        for t in transactions:
            tree.update(t)
        for node in tree.root.walk():
            if node is tree.root:
                continue
            child_total = sum(c.count for c in node.children.values())
            assert child_total <= node.count

    @given(st.lists(st.lists(concrete_paths, min_size=1, max_size=4), max_size=20))
    def test_root_children_sum_to_transactions(self, transactions):
        tree = FPTree()
        for t in transactions:
            tree.update(t)
        assert sum(c.count for c in tree.root.children.values()) == len(
            [t for t in transactions if t]
        )

    @given(st.lists(st.lists(concrete_paths, min_size=1, max_size=4), max_size=20))
    def test_last_counts_sum_to_transactions(self, transactions):
        tree = FPTree()
        for t in transactions:
            tree.update(t)
        assert sum(n.last_count for n in tree.root.walk()) == len(
            [t for t in transactions if t]
        )


@st.composite
def confusing_patterns(draw):
    condition = draw(st.lists(concrete_paths, max_size=3, unique=True))
    deduction = draw(concrete_paths)
    condition = [c for c in condition if c.prefix != deduction.prefix]
    return NamePattern(
        condition=frozenset(condition),
        deduction=frozenset({deduction}),
        kind=PatternKind.CONFUSING_WORD,
        support=draw(st.integers(0, 1000)),
    )


class TestPersistenceProperties:
    @given(confusing_patterns())
    @settings(max_examples=50)
    def test_pattern_roundtrip(self, pattern):
        data = json.loads(json.dumps(_pattern_to_json(pattern)))
        restored = _pattern_from_json(data)
        assert restored.key() == pattern.key()
        assert restored.support == pattern.support


_SNIPPETS = [
    "self.assertTrue(a.b, 90)",
    "x = compute_total(items, 5)",
    "self.rotate_angle = angle",
    "for item in load_items():",
    "result = first_value + other_value",
    "print('message', flag, 3.5)",
]


class TestTransformProperties:
    @given(st.sampled_from(_SNIPPETS))
    def test_numargs_matches_arity(self, source):
        stmt = parse_statement(source)
        transformed = transform_statement(stmt)
        for node in transformed.root.walk():
            if node.kind == "NumArgs":
                call = node.children[0]
                if call.kind in ("Call", "MethodCall", "New"):
                    assert node.value == f"NumArgs({len(call.children) - 1})"

    @given(st.sampled_from(_SNIPPETS))
    def test_numst_matches_subtoken_count(self, source):
        transformed = transform_statement(parse_statement(source))
        for node in transformed.root.walk():
            if node.kind == "NumST":
                leaves = sum(1 for _ in node.terminals())
                assert node.value == f"NumST({leaves})"

    @given(st.sampled_from(_SNIPPETS))
    def test_no_raw_literals_survive(self, source):
        transformed = transform_statement(parse_statement(source))
        for t in transformed.root.terminals():
            assert not t.value.replace(".", "").isdigit() or t.value in ("NUM",)
