"""Edge-case coverage: fixer word boundaries, local-stats featurization,
report helpers, and Datalog corner cases."""

import numpy as np
import pytest

from repro.core.features import extract_features
from repro.core.fixer import FixResult, apply_fix
from repro.core.namepath import extract_name_paths
from repro.core.patterns import confusing_word_pattern, find_violation
from repro.core.reports import Report, render_fixed_identifier
from repro.core.stats_index import StatsIndex
from repro.core.transform import transform_statement
from repro.datalog.engine import Program
from repro.datalog.terms import atom
from repro.lang.python_frontend import parse_statement
from repro.mining.confusing_pairs import ConfusingPairStore


def make_report(source: str, observed_position: int, correct: str, line: int = 1):
    """A classifier-free report targeting one subtoken of ``source``."""
    stmt = parse_statement(source)
    stmt.file_path, stmt.line = "f.py", line
    transformed = transform_statement(stmt)
    transformed.file_path, transformed.line = "f.py", line
    paths = extract_name_paths(transformed, max_paths=10)
    named = [p for p in paths if p.end not in (None, "NUM", "STR", "BOOL")]
    target = named[observed_position]
    pattern = confusing_word_pattern(
        [p for p in paths if p.prefix != target.prefix][:2],
        target.with_end(correct),
    )
    violation = find_violation(pattern, transformed, paths)
    assert violation is not None
    return Report(violation=violation, features=np.zeros(17))


class TestFixerWordBoundaries:
    def test_substring_identifier_untouched(self):
        """Fixing ``por`` must not touch ``portal`` on the same line."""
        report = make_report("portal = por", observed_position=1, correct="port")
        result = apply_fix("portal = por\n", report)
        assert result.applied
        assert result.source == "portal = port\n"

    def test_first_occurrence_only(self):
        report = make_report("x = por", observed_position=1, correct="port")
        result = apply_fix("por = por\n", report)
        assert result.applied
        # only one occurrence replaced
        assert result.source.count("port") == 1

    def test_fix_on_correct_line_of_many(self):
        report = make_report("x = por", observed_position=1, correct="port", line=3)
        source = "a = por\nb = por\nx = por\n"
        result = apply_fix(source, report)
        assert result.source.splitlines()[2] == "x = port"
        assert result.source.splitlines()[0] == "a = por"

    def test_unapplied_result_has_empty_diff(self):
        result = FixResult(applied=False, source="x = port\n")
        assert result.diff() == ""


class TestLocalStatsFeaturization:
    def test_local_stats_fill_file_levels(self, fitted_namer):
        violation = fitted_namer.all_violations()[0]
        paths = extract_name_paths(violation.statement, max_paths=10)
        empty_local = StatsIndex()
        vec_empty = extract_features(
            violation, paths, fitted_namer.stats, ConfusingPairStore(),
            local_stats=empty_local,
        )
        vec_global = extract_features(
            violation, paths, fitted_namer.stats, ConfusingPairStore()
        )
        # dataset-level features (indices 5, 8, 11) are identical...
        for i in (5, 8, 11):
            assert vec_empty[i] == vec_global[i]
        # ...while file-level identical-statement count reads zero from
        # the empty local index
        assert vec_empty[1] == 0.0

    def test_detect_uses_local_stats(self, fitted_namer):
        # detect() must not raise on a file outside the mined corpus
        from repro.core.prepare import prepare_file
        from repro.corpus.model import SourceFile

        prepared = prepare_file(
            SourceFile(path="fresh.py", source="value = 1\nother = value\n"),
            repo="fresh",
        )
        assert fitted_namer.detect(prepared) == []


class TestReportHelpers:
    def test_render_fix_preserves_snake(self):
        report = make_report(
            "num_or_process = 3", observed_position=1, correct="of"
        )
        assert render_fixed_identifier(report.violation) == "num_of_process"

    def test_report_properties(self):
        report = make_report("x = por", observed_position=1, correct="port")
        assert report.file_path == "f.py"
        assert report.observed == "por" and report.suggested == "port"
        assert "por" in report.describe()


class TestDatalogCorners:
    def test_duplicate_facts_idempotent(self):
        p = Program()
        p.fact("edge", "a", "b")
        p.fact("edge", "a", "b")
        p.rule(atom("path", "?X", "?Y"), atom("edge", "?X", "?Y"))
        assert p.solve()["path"] == {("a", "b")}

    def test_rule_with_no_matching_facts(self):
        p = Program()
        p.rule(atom("path", "?X", "?Y"), atom("edge", "?X", "?Y"))
        db = p.solve()
        assert db.get("path", set()) == set()

    def test_arity_mismatch_rows_skipped(self):
        p = Program()
        p.fact("edge", "a", "b")
        p.fact("edge", "a", "b", "c")  # wrong arity: ignored by joins
        p.rule(atom("path", "?X", "?Y"), atom("edge", "?X", "?Y"))
        assert p.solve()["path"] == {("a", "b")}

    def test_self_join(self):
        p = Program()
        p.fact("edge", "a", "a")
        p.rule(atom("loop", "?X"), atom("edge", "?X", "?X"))
        assert p.solve()["loop"] == {("a",)}
