"""HA cluster tests: routing, failover, rollout, and live replicas.

Two layers:

* **Unit** — a :class:`FakeReplica` (a :class:`ReplicaHandle` with the
  process and network edges stubbed out) drives the coordinator's
  routing, ejection, restart, rollout, and aggregation logic without
  spawning anything.
* **End-to-end** — a real 2-replica cluster (each replica a
  ``python -m repro.service.replica`` subprocess) under the load
  harness: killing a replica mid-load loses zero requests, and a
  rolling reload under load serves byte-identical reports throughout.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import types

import pytest

from repro.core.persistence import save_namer
from repro.resilience.retry import CircuitBreaker
from repro.evaluation.loadtest import (
    latency_percentile,
    reference_digests,
    run_load,
)
from repro.resilience.faults import FAULTS, FaultPlan, FaultSpec
from repro.service.client import HttpClient, ServiceError
from repro.service.cluster import (
    DRAINING,
    EJECTED,
    READY,
    STARTING,
    ClusterCoordinator,
    ClusterUnavailable,
    ReplicaHandle,
    RolloutInProgress,
    rendezvous_order,
)
from repro.service.cluster_http import serve_cluster

pytestmark = pytest.mark.cluster


# ----------------------------------------------------------------------
# unit layer: the coordinator against fake replica handles
# ----------------------------------------------------------------------


class FakeReplica(ReplicaHandle):
    """A handle whose process/network edges are in-memory stubs; the
    state machine, locks, and counters are the real thing."""

    def __init__(self, name: str, artifact: str = "/art/v1.json") -> None:
        super().__init__(name, artifact, runtime_dir="/nonexistent")
        self.state = READY
        self.client = types.SimpleNamespace(last_headers={})
        self.probe_ok = True
        self.fail_forward = False
        self.bad_artifacts: set[str] = set()
        self.reload_calls: list[str] = []
        self.forwarded: list[dict] = []
        self.metrics_doc = {
            "requests_total": 3,
            "files_analyzed": 5,
            "errors": 1,
            "violations_reported": 2,
        }
        self.unreachable_metrics = False
        self._alive = True

    def spawn(self) -> None:
        self._alive = True
        with self._lock:
            self.state = STARTING
            self.consecutive_failures = 0

    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        self._alive = False

    def terminate(self, timeout: float = 10.0) -> None:
        self._alive = False

    def wait_ready(self, timeout, stop=None) -> bool:
        return self.probe_ok

    def probe_ready(self) -> bool:
        return self.probe_ok

    def forward_analyze(self, payload: dict) -> dict:
        self.forwarded.append(payload)
        if self.fail_forward:
            raise ServiceError(503, "injected backpressure")
        return {"path": payload.get("path"), "reports": [], "served_by": self.name}

    def reload(self, artifact_path: str) -> dict:
        self.reload_calls.append(artifact_path)
        if artifact_path in self.bad_artifacts:
            raise ServiceError(500, f"corrupt artifact {artifact_path}")
        return {"artifacts": artifact_path, "degraded": False}

    def fetch_metrics(self) -> dict:
        if self.unreachable_metrics:
            raise ServiceError(0, "connection refused")
        return dict(self.metrics_doc)


def make_cluster(n: int = 3, **kwargs) -> tuple[ClusterCoordinator, list[FakeReplica]]:
    handles = [FakeReplica(f"replica-{i}") for i in range(n)]
    coordinator = ClusterCoordinator(
        artifact_path="/art/v1.json", handles=handles, **kwargs
    )
    return coordinator, handles


class TestRendezvousRouting:
    def test_order_is_deterministic(self):
        names = [f"replica-{i}" for i in range(5)]
        for key in ("a", "b", "c", "0123"):
            assert rendezvous_order(key, names) == rendezvous_order(key, names)

    def test_orders_differ_across_keys(self):
        names = [f"replica-{i}" for i in range(5)]
        orders = {tuple(rendezvous_order(f"key-{i}", names)) for i in range(32)}
        assert len(orders) > 1

    def test_removing_a_name_preserves_relative_order(self):
        # The HRW property: dropping one replica never reshuffles the
        # others, so an ejection only remaps the keys it owned.
        names = [f"replica-{i}" for i in range(5)]
        for i in range(20):
            key = f"key-{i}"
            full = rendezvous_order(key, names)
            without = rendezvous_order(key, names[1:])
            assert [n for n in full if n != "replica-0"] == without

    def test_same_payload_routes_to_same_replica(self):
        coordinator, _ = make_cluster(3)
        payload = {"source": "x = 1", "path": "a.py"}
        first, headers1 = coordinator.analyze_payload(payload)
        _, headers2 = coordinator.analyze_payload(payload)
        assert headers1["X-Repro-Replica"] == headers2["X-Repro-Replica"]
        assert first["served_by"] == headers1["X-Repro-Replica"]
        assert coordinator.routed_requests == 2

    def test_route_order_covers_every_replica(self):
        coordinator, handles = make_cluster(3)
        order = coordinator.route_order(coordinator.request_key({"a": 1}))
        assert sorted(h.name for h in order) == sorted(h.name for h in handles)


class TestFailover:
    def test_failing_first_choice_fails_over(self):
        coordinator, handles = make_cluster(3)
        payload = {"source": "y = 2", "path": "b.py"}
        first = coordinator.route_order(coordinator.request_key(payload))[0]
        first.fail_forward = True
        body, headers = coordinator.analyze_payload(payload)
        assert headers["X-Repro-Replica"] != first.name
        assert body["served_by"] != first.name
        assert coordinator.failovers >= 1
        assert first.consecutive_failures == 1

    def test_non_transient_errors_pass_through(self):
        coordinator, handles = make_cluster(2)

        def bad_request(payload):
            raise ServiceError(400, "no source")

        for handle in handles:
            handle.forward_analyze = bad_request
        with pytest.raises(ServiceError) as excinfo:
            coordinator.analyze_payload({"path": "x.py"})
        assert excinfo.value.status == 400
        assert coordinator.failovers == 0

    def test_unroutable_cluster_raises_unavailable(self):
        coordinator, handles = make_cluster(2, failover_deadline=0.3)
        for handle in handles:
            handle.state = EJECTED
        with pytest.raises(ClusterUnavailable):
            coordinator.analyze_payload({"source": "z", "path": "c.py"})
        assert coordinator.unavailable_errors == 1

    def test_ejection_after_consecutive_failures_and_readmission(self):
        coordinator, handles = make_cluster(1, eject_after=3)
        handle = handles[0]
        assert not handle.record_failure(3)
        assert not handle.record_failure(3)
        assert handle.record_failure(3)  # third strike ejects
        assert handle.state == EJECTED
        assert handle.ejections == 1
        assert not handle.routable
        assert handle.record_success()  # a good probe re-admits
        assert handle.state == READY
        assert handle.readmissions == 1

    def test_monitor_tick_restarts_dead_replica(self):
        coordinator, handles = make_cluster(1, restart_backoff=0.01)
        handle = handles[0]
        handle.kill()
        coordinator._monitor_tick(handle)
        assert handle.restarts == 1
        assert handle.state == READY  # wait_ready + record_success
        assert handle.restart_streak == 0

    def test_injected_replica_crash_site(self):
        coordinator, handles = make_cluster(1, restart_backoff=0.01)
        handle = handles[0]
        plan = FaultPlan(
            [FaultSpec(site="cluster.replica_crash", match=handle.name, max_trips=1)],
            seed=3,
        )
        with FAULTS.armed(plan):
            coordinator._monitor_tick(handle)
        assert handle.injected_crashes == 1
        assert handle.restarts == 1  # killed, then restarted in the same tick


class TestRollingRollout:
    def test_complete_rollout_upgrades_every_replica(self):
        coordinator, handles = make_cluster(3)
        record = coordinator.rolling_reload("/art/v2.json")
        assert record["status"] == "complete"
        assert [s["replica"] for s in record["steps"]] == [h.name for h in handles]
        assert all(s["reloaded"] for s in record["steps"])
        assert all(h.artifact_path == "/art/v2.json" for h in handles)
        assert all(h.state == READY for h in handles)
        assert coordinator.artifact_path == "/art/v2.json"
        assert coordinator.rollouts_completed == 1
        assert coordinator.rollout["phase"] == "complete"

    def test_bad_artifact_halts_and_rolls_back(self):
        coordinator, handles = make_cluster(3)
        handles[1].bad_artifacts.add("/art/v2.json")
        record = coordinator.rolling_reload("/art/v2.json")
        assert record["status"] == "rolled_back"
        assert record["failed_replica"] == "replica-1"
        # replica-2 was never touched with the new artifact.
        assert handles[2].reload_calls == []
        # replica-0 (already upgraded) and replica-1 went back to v1.
        assert handles[0].reload_calls == ["/art/v2.json", "/art/v1.json"]
        assert handles[1].reload_calls[-1] == "/art/v1.json"
        assert all(h.artifact_path == "/art/v1.json" for h in handles)
        assert all(h.state == READY for h in handles)
        assert coordinator.artifact_path == "/art/v1.json"
        assert coordinator.rollbacks == 1
        assert coordinator.rollouts_completed == 0

    def test_injected_bad_artifact_site(self):
        coordinator, handles = make_cluster(2)
        plan = FaultPlan(
            [FaultSpec(site="cluster.bad_artifact", match="poisoned")], seed=1
        )
        with FAULTS.armed(plan):
            record = coordinator.rolling_reload("/art/poisoned.json")
        assert record["status"] == "rolled_back"
        # The injected fault fires before the replica is even asked.
        assert handles[0].reload_calls == ["/art/v1.json"]
        assert coordinator.artifact_path == "/art/v1.json"

    def test_injected_slow_drain_exceeds_deadline_but_proceeds(self):
        coordinator, handles = make_cluster(2, drain_deadline=0.2)
        plan = FaultPlan(
            [FaultSpec(site="cluster.slow_drain", match="replica-0")], seed=1
        )
        with FAULTS.armed(plan):
            record = coordinator.rolling_reload("/art/v2.json")
        assert record["status"] == "complete"
        step0 = record["steps"][0]
        assert step0["drain_fault"] and step0["drained"] is False
        assert record["steps"][1]["drained"] is True

    def test_concurrent_rollout_rejected(self):
        coordinator, _ = make_cluster(2)
        acquired = coordinator._rollout_lock.acquire(blocking=False)
        assert acquired
        try:
            with pytest.raises(RolloutInProgress):
                coordinator.rolling_reload("/art/v2.json")
        finally:
            coordinator._rollout_lock.release()
        assert coordinator.rolling_reload("/art/v2.json")["status"] == "complete"

    def test_draining_replica_is_not_routable(self):
        coordinator, handles = make_cluster(2)
        payload = {"source": "q = 3", "path": "d.py"}
        owner = coordinator.route_order(coordinator.request_key(payload))[0]
        owner.set_state(DRAINING)
        _, headers = coordinator.analyze_payload(payload)
        assert headers["X-Repro-Replica"] != owner.name


class TestAggregation:
    def test_metrics_sums_replica_counters(self):
        coordinator, handles = make_cluster(3)
        handles[2].unreachable_metrics = True
        document = coordinator.metrics()
        assert document["cluster"]["replicas"] == 3
        assert document["totals"]["requests_total"] == 6  # two reachable x 3
        assert document["totals"]["violations_reported"] == 4
        assert "unreachable" in document["replicas"]["replica-2"]
        assert document["replicas"]["replica-0"]["requests_total"] == 3

    def test_status_document_shape(self):
        coordinator, handles = make_cluster(2)
        coordinator.analyze_payload({"source": "s = 1", "path": "e.py"})
        status = coordinator.status()
        assert status["routing"] == "rendezvous-sha256"
        assert status["ready"] is True
        assert status["counters"]["routed_requests"] == 1
        assert {r["name"] for r in status["replicas"]} == {
            "replica-0", "replica-1",
        }
        assert sum(r["routed"] for r in status["replicas"]) == 1

    def test_health_reflects_routability(self):
        coordinator, handles = make_cluster(2)
        assert coordinator.health()["ready"] is True
        for handle in handles:
            handle.state = EJECTED
        health = coordinator.health()
        assert health["ready"] is False and health["status"] == "unavailable"

    def test_latency_percentile_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert latency_percentile(samples, 50) == pytest.approx(50.0, abs=1.0)
        assert latency_percentile(samples, 99) == pytest.approx(99.0, abs=1.0)
        assert latency_percentile([], 50) == 0.0


# ----------------------------------------------------------------------
# end-to-end layer: real replica subprocesses
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def artifact_file(fitted_namer, tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster") / "namer.json"
    save_namer(fitted_namer, path)
    return path


@pytest.fixture(scope="module")
def payloads(small_corpus):
    out = []
    for repo, source in small_corpus.files():
        out.append({"source": source.source, "path": source.path})
        if len(out) == 4:
            break
    return out


@pytest.fixture(scope="module")
def cluster(artifact_file):
    server = serve_cluster(
        str(artifact_file), port=0, replicas=2, replica_workers=2
    )
    yield server
    server.stop()


@pytest.fixture(scope="module")
def reference(artifact_file, payloads):
    from repro.service.engine import AnalysisEngine

    engine = AnalysisEngine(
        artifact_path=str(artifact_file), workers=1, cache_entries=8
    )
    try:
        return reference_digests(engine, payloads)
    finally:
        engine.shutdown(drain=False)


class TestClusterEndToEnd:
    def test_cluster_comes_up_ready(self, cluster):
        client = HttpClient(cluster.url)
        health = client.health(ready=True)
        assert health["ready"] is True
        status = client.request("GET", "/cluster/status")
        assert [r["state"] for r in status["replicas"]] == [READY, READY]

    def test_stable_routing_and_cache_affinity(self, cluster, payloads):
        client = HttpClient(cluster.url)
        client.request("POST", "/analyze", payloads[0])
        owner = client.last_headers.get("X-Repro-Replica")
        assert owner
        for _ in range(3):
            client.request("POST", "/analyze", payloads[0])
            assert client.last_headers.get("X-Repro-Replica") == owner
        # The owning replica's result cache answers the repeats.
        assert "memory=1" in client.last_headers.get("X-Repro-Cache", "")

    def test_kill_replica_under_load_loses_nothing(
        self, cluster, payloads, reference
    ):
        coordinator = cluster.coordinator
        victim = coordinator.handles[0]
        result = run_load(
            cluster.url,
            payloads,
            clients=4,
            total_requests=60,
            mid_run=(0.3, victim.kill),
        )
        assert result.failures == [], [s.error for s in result.failures]
        assert result.requests == 60
        for index, digests in result.digests_by_payload().items():
            assert digests == {reference[index]}, f"payload {index} diverged"
        # The monitor notices the corpse and brings it back.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not victim.routable:
            time.sleep(0.2)
        assert victim.routable and victim.restarts >= 1

    def test_rolling_reload_under_load_is_invisible(
        self, cluster, payloads, reference, artifact_file, tmp_path_factory
    ):
        new_artifact = tmp_path_factory.mktemp("rollout") / "namer-v2.json"
        new_artifact.write_bytes(artifact_file.read_bytes())
        rollout_client = HttpClient(cluster.url, timeout=300.0)
        outcome: dict = {}

        def start_rollout():
            outcome.update(
                rollout_client.request(
                    "POST", "/reload", {"artifacts": str(new_artifact)}
                )
            )

        result = run_load(
            cluster.url,
            payloads,
            clients=4,
            total_requests=80,
            mid_run=(0.2, start_rollout),
        )
        assert result.failures == [], [s.error for s in result.failures]
        for index, digests in result.digests_by_payload().items():
            assert digests == {reference[index]}, f"payload {index} diverged"
        assert outcome["status"] == "complete"
        status = HttpClient(cluster.url).request("GET", "/cluster/status")
        assert status["artifact"] == str(new_artifact)
        assert all(r["artifacts"] == str(new_artifact) for r in status["replicas"])

    def test_rollout_of_bad_artifact_rolls_back(self, cluster, tmp_path_factory):
        bad = tmp_path_factory.mktemp("rollout") / "bad.json"
        bad.write_text("{\"not\": \"a namer artifact\"}")
        before = HttpClient(cluster.url).request("GET", "/cluster/status")
        record = HttpClient(cluster.url, timeout=300.0).request(
            "POST", "/reload", {"artifacts": str(bad)}
        )
        assert record["status"] == "rolled_back"
        after = HttpClient(cluster.url).request("GET", "/cluster/status")
        assert after["artifact"] == before["artifact"]
        assert HttpClient(cluster.url).health(ready=True)["ready"] is True

    def test_cluster_metrics_aggregate_replica_traffic(self, cluster, payloads):
        client = HttpClient(cluster.url)
        client.request("POST", "/analyze", payloads[1])
        metrics = client.request("GET", "/metrics")
        assert metrics["cluster"]["routed_requests"] >= 1
        assert metrics["totals"]["requests_total"] >= 1
        assert set(metrics["replicas"]) == {"replica-0", "replica-1"}
        assert "p95_ms" in metrics["cluster"]["latency"]


class TestReplicaProcess:
    """The replica runner on its own: readiness split + graceful drain."""

    def _spawn(self, artifact_file, tmp_path, fault_plan=None):
        port_file = tmp_path / "replica.port"
        cmd = [
            sys.executable, "-m", "repro.service.replica",
            "--artifacts", str(artifact_file),
            "--port", "0", "--port-file", str(port_file),
            "--workers", "2",
        ]
        if fault_plan is not None:
            plan_path = tmp_path / "plan.json"
            plan_path.write_text(json.dumps(fault_plan.to_json()))
            cmd += ["--fault-plan", str(plan_path)]
        import pathlib

        env = dict(os.environ)
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT
        )
        return process, port_file

    def _wait_port(self, process, port_file, timeout=120.0):
        from repro.service.replica import read_port_file

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            assert process.poll() is None, "replica died during startup"
            port = read_port_file(port_file)
            if port is not None:
                return port
            time.sleep(0.05)
        raise AssertionError("replica never wrote its port file")

    def test_liveness_before_readiness(self, artifact_file, tmp_path):
        # A delayed artifact load keeps the replica warming while its
        # HTTP listener is already up: alive yes, ready no.
        plan = FaultPlan(
            [FaultSpec(site="engine.load", delay=2.0, raises=None)], seed=1
        )
        process, port_file = self._spawn(artifact_file, tmp_path, fault_plan=plan)
        try:
            port = self._wait_port(process, port_file)
            # A polling client: warming 503s must not open its breaker.
            client = HttpClient(
                f"http://127.0.0.1:{port}", timeout=10.0,
                breaker=CircuitBreaker(failure_threshold=1_000_000_000),
            )
            alive = client.health()
            assert alive["status"] in ("warming", "ok", "degraded")
            saw_warming = False
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    if client.health(ready=True)["ready"]:
                        break
                except ServiceError as exc:
                    assert exc.status == 503
                    saw_warming = True
                time.sleep(0.1)
            else:
                raise AssertionError("replica never became ready")
            assert saw_warming, "readiness probe never answered 503 while warming"
        finally:
            process.kill()
            process.wait(10)

    def test_sigterm_drains_in_flight_request(self, artifact_file, tmp_path):
        # Every analyze sleeps 1.5s (delay-only fault), so a request is
        # reliably in flight when SIGTERM lands; the replica must finish
        # it before exiting.
        plan = FaultPlan(
            [FaultSpec(site="engine.prepare", delay=1.5, raises=None)], seed=1
        )
        process, port_file = self._spawn(artifact_file, tmp_path, fault_plan=plan)
        try:
            port = self._wait_port(process, port_file)
            url = f"http://127.0.0.1:{port}"
            ready_client = HttpClient(
                url, timeout=10.0,
                breaker=CircuitBreaker(failure_threshold=1_000_000_000),
            )
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    if ready_client.health(ready=True)["ready"]:
                        break
                except ServiceError:
                    pass
                time.sleep(0.1)
            outcome: dict = {}

            def slow_request():
                client = HttpClient(url, timeout=30.0)
                try:
                    outcome["body"] = client.analyze("x = 1", path="slow.py")
                except ServiceError as exc:
                    outcome["error"] = exc

            thread = threading.Thread(target=slow_request)
            thread.start()
            time.sleep(0.5)  # the request is now sleeping inside analyze
            process.send_signal(signal.SIGTERM)
            thread.join(timeout=30)
            assert not thread.is_alive(), "in-flight request never completed"
            assert "error" not in outcome, f"dropped in-flight: {outcome.get('error')}"
            assert outcome["body"]["path"] == "slow.py"
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(10)
