"""Round-trip tests for Namer artifact persistence."""

import json

import numpy as np
import pytest

from repro.core.namer import Namer
from repro.core.persistence import (
    SCHEMA_VERSION,
    PersistenceError,
    load_namer,
    save_namer,
)
from repro.core.prepare import prepare_file
from repro.corpus.model import SourceFile

BUGGY = (
    "from unittest import TestCase\n"
    "class TestX(TestCase):\n"
    "    def test_a(self):\n"
    "        item = self.build_item()\n"
    "        self.assertEqual(item.size, 3)\n"
    "    def test_b(self):\n"
    "        item = self.build_item()\n"
    "        self.assertTrue(item.count, 5)\n"
)


@pytest.fixture(scope="module")
def roundtrip(fitted_namer, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "namer.json"
    save_namer(fitted_namer, path)
    return fitted_namer, load_namer(path)


class TestRoundTrip:
    def test_pattern_set_identical(self, roundtrip):
        original, loaded = roundtrip
        assert {p.key() for p in original.matcher.patterns} == {
            p.key() for p in loaded.matcher.patterns
        }

    def test_supports_preserved(self, roundtrip):
        original, loaded = roundtrip
        orig = {p.key(): p.support for p in original.matcher.patterns}
        load = {p.key(): p.support for p in loaded.matcher.patterns}
        assert orig == load

    def test_pairs_preserved(self, roundtrip):
        original, loaded = roundtrip
        assert original.pairs.counts == loaded.pairs.counts

    def test_stats_dataset_level_preserved(self, roundtrip):
        original, loaded = roundtrip
        pattern = original.matcher.patterns[0]
        stmt = original.all_violations()[0].statement
        assert original.stats.satisfaction_count(
            pattern, stmt, "dataset"
        ) == loaded.stats.satisfaction_count(pattern, stmt, "dataset")

    def test_total_statements_preserved(self, roundtrip):
        original, loaded = roundtrip
        assert original.stats.total_statements == loaded.stats.total_statements

    def test_classifier_scores_identical(self, roundtrip):
        original, loaded = roundtrip
        X = np.vstack(
            [original.featurize(v) for v in original.all_violations()[:10]]
        )
        a = original.classifier.decision_function(X)
        b = loaded.classifier.decision_function(X)
        assert np.allclose(a, b)

    def test_loaded_namer_detects(self, roundtrip):
        _, loaded = roundtrip
        prepared = prepare_file(
            SourceFile(path="t.py", source=BUGGY), repo="demo"
        )
        violations = loaded.violations_in(prepared)
        assert any(v.observed == "True" for v in violations)

    def test_same_violations_as_original(self, roundtrip):
        original, loaded = roundtrip
        prepared = prepare_file(SourceFile(path="t.py", source=BUGGY), repo="demo")
        a = {(v.observed, v.suggested) for v in original.violations_in(prepared)}
        b = {(v.observed, v.suggested) for v in loaded.violations_in(prepared)}
        assert a == b


class TestErrors:
    def test_save_unmined_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_namer(Namer(), tmp_path / "x.json")

    def test_schema_version_stamped(self, tmp_path, fitted_namer):
        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_mismatched_version_raises(self, tmp_path, fitted_namer):
        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        doc = json.loads(path.read_text())
        doc["schema_version"] = 999
        path.write_text(json.dumps(doc))
        with pytest.raises(PersistenceError, match="schema_version 999"):
            load_namer(path)

    def test_missing_version_raises(self, tmp_path, fitted_namer):
        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        doc = json.loads(path.read_text())
        del doc["schema_version"]
        path.write_text(json.dumps(doc))
        with pytest.raises(PersistenceError, match="no schema_version stamp"):
            load_namer(path)

    def test_persistence_error_is_a_value_error(self):
        # Callers written against the pre-PersistenceError API caught
        # ValueError; they must keep working.
        assert issubclass(PersistenceError, ValueError)

    def test_missing_file_raises_persistence_error(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read"):
            load_namer(tmp_path / "does-not-exist.json")

    def test_invalid_json_raises_persistence_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError, match="not valid JSON"):
            load_namer(path)

    def test_truncated_document_fails_checksum(self, tmp_path, fitted_namer):
        # Deleting a section leaves valid JSON; the SHA-256 stamp is
        # what catches it (the pre-checksum failure mode this fixes).
        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        doc = json.loads(path.read_text())
        del doc["stats"]
        path.write_text(json.dumps(doc))
        with pytest.raises(PersistenceError, match="SHA-256"):
            load_namer(path)

    def test_truncated_document_with_restamped_checksum(
        self, tmp_path, fitted_namer
    ):
        # Even a re-stamped (checksum-consistent) but incomplete
        # document fails with the decode-layer error.
        from repro.resilience.checkpoint import document_checksum

        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        doc = json.loads(path.read_text())
        del doc["stats"]
        del doc["checksum"]
        doc = {"schema_version": doc["schema_version"],
               "checksum": document_checksum(doc),
               **{k: v for k, v in doc.items() if k != "schema_version"}}
        path.write_text(json.dumps(doc))
        with pytest.raises(PersistenceError, match="truncated or malformed"):
            load_namer(path)

    def test_checksum_stamped_next_to_schema_version(self, tmp_path, fitted_namer):
        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        doc = json.loads(path.read_text())
        keys = list(doc.keys())
        assert keys[:2] == ["schema_version", "checksum"]
        assert len(doc["checksum"]) == 64

    def test_missing_checksum_raises(self, tmp_path, fitted_namer):
        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        doc = json.loads(path.read_text())
        del doc["checksum"]
        path.write_text(json.dumps(doc))
        with pytest.raises(PersistenceError, match="no checksum stamp"):
            load_namer(path)

    def test_single_flipped_value_fails_checksum(self, tmp_path, fitted_namer):
        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        doc = json.loads(path.read_text())
        doc["patterns"][0]["support"] += 1
        path.write_text(json.dumps(doc))
        with pytest.raises(PersistenceError, match="SHA-256"):
            load_namer(path)


class TestDegradedLoad:
    """`degraded_ok` keeps the pattern half alive through a corrupt
    classifier section (the serving layer's no-500s guarantee)."""

    def _corrupt_classifier(self, path):
        from repro.resilience.checkpoint import document_checksum

        doc = json.loads(path.read_text())
        doc["classifier"] = {"scaler_mean": "garbage"}
        del doc["checksum"]
        doc["checksum"] = document_checksum(doc)
        path.write_text(json.dumps(doc))

    def test_strict_load_rejects_corrupt_classifier(self, tmp_path, fitted_namer):
        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        self._corrupt_classifier(path)
        with pytest.raises(PersistenceError, match="classifier"):
            load_namer(path)

    def test_degraded_load_drops_classifier_keeps_patterns(
        self, tmp_path, fitted_namer
    ):
        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        self._corrupt_classifier(path)
        loaded = load_namer(path, degraded_ok=True)
        assert loaded.classifier is None
        assert loaded.degraded_reasons
        assert {p.key() for p in loaded.matcher.patterns} == {
            p.key() for p in fitted_namer.matcher.patterns
        }

    def test_degraded_load_survives_bad_checksum(self, tmp_path, fitted_namer):
        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        doc = json.loads(path.read_text())
        doc["checksum"] = "0" * 64
        path.write_text(json.dumps(doc))
        loaded = load_namer(path, degraded_ok=True)
        assert loaded.classifier is None  # untrusted bytes: pattern-only
        assert any("SHA-256" in r for r in loaded.degraded_reasons)

    def test_degraded_load_still_rejects_corrupt_patterns(
        self, tmp_path, fitted_namer
    ):
        path = tmp_path / "namer.json"
        save_namer(fitted_namer, path)
        doc = json.loads(path.read_text())
        doc["patterns"] = "nonsense"
        path.write_text(json.dumps(doc))
        with pytest.raises(PersistenceError):
            load_namer(path, degraded_ok=True)
