"""Tests for Datalog fact extraction from modules."""

from repro.analysis.facts import MODULE_FUNC, extract_facts
from repro.lang.java.frontend import parse_java
from repro.lang.python_frontend import parse_module


class TestPythonFacts:
    def test_alloc_for_class_instantiation(self):
        facts = extract_facts(parse_module("class C:\n    pass\nx = C()"))
        assert any(origin == "C" for origin in facts.heap_origin.values())

    def test_move(self):
        facts = extract_facts(parse_module("x = y"))
        assert ("x", "y", MODULE_FUNC) in facts.move

    def test_load_store(self):
        facts = extract_facts(parse_module("a = b.f\nc.g = d"))
        assert ("a", "b", "f", MODULE_FUNC) in facts.load
        assert ("c", "g", "d", MODULE_FUNC) in facts.store

    def test_prim_assign(self):
        facts = extract_facts(parse_module("x = 1\ny = 'a'\nz = True"))
        types = {t for _, t, _ in facts.prim_assign}
        assert types == {"Num", "Str", "Bool"}

    def test_params_skip_self(self):
        src = "class C:\n    def m(self, a, b):\n        pass"
        facts = extract_facts(parse_module(src))
        rows = [(f, i, p) for f, i, p in facts.formal_param if f == "C.m"]
        assert ("C.m", 0, "a") in rows and ("C.m", 1, "b") in rows
        assert not any(p == "self" for _, _, p in rows)

    def test_self_alloc_origin_root_base(self):
        src = (
            "class Base:\n    pass\n"
            "class Mid(Base):\n    pass\n"
            "class Leaf(Mid):\n    def m(self):\n        pass\n"
        )
        facts = extract_facts(parse_module(src))
        self_heaps = [h for v, h, f in facts.alloc if v == "self" and f == "Leaf.m"]
        assert facts.heap_origin[self_heaps[0]] == "Base"

    def test_cyclic_bases_terminate(self):
        src = (
            "class A(B):\n    def m(self):\n        pass\n"
            "class B(A):\n    pass\n"
        )
        facts = extract_facts(parse_module(src))
        assert facts.classes  # no infinite loop

    def test_imports(self):
        src = "import numpy as np\nfrom unittest import TestCase"
        facts = extract_facts(parse_module(src))
        assert ("np", "numpy") in facts.import_alias
        assert ("TestCase", "TestCase") in facts.import_alias

    def test_external_call_return(self):
        facts = extract_facts(parse_module("x = external()"))
        assert facts.external_call
        origins = set(facts.heap_origin.values())
        assert "external" in origins

    def test_in_file_call_resolution(self):
        src = "def make():\n    return 1\nx = make()"
        facts = extract_facts(parse_module(src))
        assert any(callee == "make" for _, callee in facts.resolves_to)

    def test_constructor_init_resolution(self):
        src = (
            "class C:\n    def __init__(self, a):\n        self.a = a\n"
            "x = C(5)"
        )
        facts = extract_facts(parse_module(src))
        assert any(callee == "C.__init__" for _, callee in facts.resolves_to)

    def test_literal_args_become_temps(self):
        facts = extract_facts(parse_module("f(5, 'x')"))
        literal_params = [p for _, _, p in facts.actual_param if p.startswith("<lit")]
        assert len(literal_params) == 2

    def test_opaque_assign(self):
        facts = extract_facts(parse_module("x = a + b\nx += 1"))
        assert ("x", MODULE_FUNC) in facts.opaque_assign

    def test_formal_return(self):
        facts = extract_facts(parse_module("def f():\n    return value"))
        assert ("f", "value") in facts.formal_return

    def test_entry_points_public_only(self):
        src = "def pub():\n    pass\ndef _priv():\n    pass"
        facts = extract_facts(parse_module(src))
        entries = facts.entry_points()
        assert "pub" in entries and "_priv" not in entries
        assert MODULE_FUNC in entries

    def test_stmt_function_mapping(self):
        src = "x = 1\ndef f():\n    y = 2"
        module = parse_module(src)
        facts = extract_facts(module)
        assert facts.stmt_function[0] == MODULE_FUNC
        assert facts.stmt_function[2] == "f"


class TestJavaFacts:
    def test_this_alloc(self):
        src = "class A extends B { void m() { this.run(); } }"
        facts = extract_facts(parse_java(src))
        this_allocs = [(v, h, f) for v, h, f in facts.alloc if v == "this"]
        assert this_allocs
        assert facts.heap_origin[this_allocs[0][1]] == "B"

    def test_decl_types(self):
        src = "class A { void m() { int count = 0; String name = null; } }"
        facts = extract_facts(parse_java(src))
        decls = {(v, o) for v, o, _ in facts.decl_type}
        assert ("count", "Num") in decls
        assert ("name", "Str") in decls

    def test_param_decl_types(self):
        src = "class A { void m(Intent intent) { } }"
        facts = extract_facts(parse_java(src))
        assert ("intent", "Intent", "A.m") in facts.decl_type

    def test_catch_decl_type(self):
        src = (
            "class A { void m() { try { f(); } catch (Exception e) {"
            " e.printStackTrace(); } } }"
        )
        facts = extract_facts(parse_java(src))
        assert ("e", "Exception", "A.m") in facts.decl_type

    def test_new_allocates(self):
        src = "class A { void m() { Intent i = new Intent(); } }"
        facts = extract_facts(parse_java(src))
        assert "Intent" in facts.heap_origin.values()

    def test_catch_body_calls_extracted(self):
        src = (
            "class A { void m() { try { f(); } catch (Exception e) {"
            " e.printStackTrace(); } } }"
        )
        facts = extract_facts(parse_java(src))
        assert len(facts.call_site_in) >= 2
