"""Tests for name patterns (Definitions 3.6-3.9)."""

import pytest

from repro.core.namepath import EPSILON, extract_name_paths
from repro.core.patterns import (
    NamePattern,
    PatternKind,
    Relation,
    check_pattern,
    confusing_word_pattern,
    consistency_pattern,
    find_violation,
)
from repro.core.transform import transform_statement
from repro.lang.python_frontend import parse_statement


def prepared(source: str, origins=None):
    stmt = transform_statement(parse_statement(source), origins)
    return stmt, extract_name_paths(stmt)


def example_3_8_pattern():
    """The consistency pattern of Example 3.8: self.<n1> = <n2>."""
    _, paths = prepared("self.name = name", origins={"self": "Object", "name": "Str"})
    by_end_position = {p.prefix[-1].value + str(p.prefix[1].value): p for p in paths}
    self_path = next(p for p in paths if p.end == "self")
    attr_path = next(p for p in paths if p.prefix[1].value == "AttributeStore" and p.end == "name")
    value_path = next(p for p in paths if p.prefix[1].value == "NameLoad")
    return consistency_pattern([self_path], attr_path, value_path)


def assert_pattern():
    """Figure 2(e): condition self/assert/NUM, deduction Equal."""
    _, paths = prepared(
        "self.assertEqual(picture.rotate_angle, 90)", origins={"self": "TestCase"}
    )
    self_path = next(p for p in paths if p.end == "self")
    assert_path = next(p for p in paths if p.end == "assert")
    num_path = next(p for p in paths if p.end == "NUM")
    equal_path = next(p for p in paths if p.end == "Equal")
    return confusing_word_pattern([self_path, assert_path, num_path], equal_path)


class TestConstruction:
    def test_consistency_requires_two_symbolic(self):
        _, paths = prepared("self.name = name")
        with pytest.raises(ValueError):
            NamePattern(
                condition=frozenset(),
                deduction=frozenset({paths[0]}),
                kind=PatternKind.CONSISTENCY,
            )

    def test_confusing_requires_concrete(self):
        _, paths = prepared("self.name = name")
        with pytest.raises(ValueError):
            NamePattern(
                condition=frozenset(),
                deduction=frozenset({paths[0].as_symbolic()}),
                kind=PatternKind.CONFUSING_WORD,
            )

    def test_key_ignores_support(self):
        p = assert_pattern()
        assert p.key() == p.with_support(10).key()

    def test_str_renders_both_sections(self):
        text = str(assert_pattern())
        assert "Condition:" in text and "Deduction:" in text


class TestConfusingWordSemantics:
    def test_satisfied(self):
        pattern = assert_pattern()
        _, paths = prepared(
            "self.assertEqual(a.b, 5)", origins={"self": "TestCase"}
        )
        assert check_pattern(pattern, paths) is Relation.SATISFIED

    def test_violated_by_figure2_bug(self):
        pattern = assert_pattern()
        stmt, paths = prepared(
            "self.assertTrue(picture.rotate_angle, 90)", origins={"self": "TestCase"}
        )
        assert check_pattern(pattern, paths) is Relation.VIOLATED
        violation = find_violation(pattern, stmt, paths)
        assert violation.observed == "True"
        assert violation.suggested == "Equal"

    def test_no_match_without_origin(self):
        pattern = assert_pattern()
        _, paths = prepared("self.assertTrue(picture.rotate_angle, 90)")
        assert check_pattern(pattern, paths) is Relation.NO_MATCH

    def test_no_match_different_arity(self):
        pattern = assert_pattern()
        _, paths = prepared(
            "self.assertTrue(flag)", origins={"self": "TestCase"}
        )
        assert check_pattern(pattern, paths) is Relation.NO_MATCH

    def test_find_violation_returns_none_when_satisfied(self):
        pattern = assert_pattern()
        stmt, paths = prepared("self.assertEqual(a.b, 5)", origins={"self": "TestCase"})
        assert find_violation(pattern, stmt, paths) is None


class TestConsistencySemantics:
    def test_satisfied(self):
        pattern = example_3_8_pattern()
        _, paths = prepared("self.port = port", origins={"self": "Object", "port": "Str"})
        assert check_pattern(pattern, paths) is Relation.SATISFIED

    def test_violated(self):
        pattern = example_3_8_pattern()
        stmt, paths = prepared(
            "self.help = docstring", origins={"self": "Object", "docstring": "Str"}
        )
        assert check_pattern(pattern, paths) is Relation.VIOLATED
        violation = find_violation(pattern, stmt, paths)
        assert {violation.observed, violation.suggested} == {"help", "docstring"}

    def test_case_insensitive_satisfaction(self):
        """Java's ``Intent intent`` idiom: type and variable subtokens
        match case-insensitively."""
        pattern = example_3_8_pattern()
        _, paths = prepared("self.name = Name", origins={"self": "Object", "Name": "Str"})
        assert check_pattern(pattern, paths) is Relation.SATISFIED

    def test_targets_function_name(self):
        assert assert_pattern().targets_function_name()
        assert not example_3_8_pattern().targets_function_name()
