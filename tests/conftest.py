"""Shared fixtures: small corpora and a fitted Namer.

Session scope keeps the expensive pieces (corpus generation, mining,
points-to over every file) to one run for the whole suite.
"""

from __future__ import annotations

import random

import pytest

from repro.core.namer import Namer, NamerConfig
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.corpus.javagen import generate_java_corpus
from repro.evaluation.oracle import Oracle
from repro.evaluation.precision import sample_balanced_training
from repro.mining.miner import MiningConfig

#: mining thresholds scaled down to the small test corpora
SMALL_MINING = MiningConfig(min_pattern_support=10, min_path_frequency=5)


@pytest.fixture(scope="session")
def small_corpus():
    return generate_python_corpus(
        GeneratorConfig(num_repos=12, issue_rate=0.15, seed=99)
    )


@pytest.fixture(scope="session")
def small_java_corpus():
    return generate_java_corpus(
        GeneratorConfig(num_repos=10, issue_rate=0.15, seed=99)
    )


@pytest.fixture(scope="session")
def fitted_namer(small_corpus):
    """A Namer mined over the small corpus with a trained classifier."""
    namer = Namer(NamerConfig(mining=SMALL_MINING))
    namer.mine(small_corpus)
    oracle = Oracle(small_corpus)
    violations = namer.all_violations()
    rng = random.Random(5)
    training, labels = sample_balanced_training(violations, oracle, 80, rng)
    if len(set(labels)) > 1:
        namer.train(training, labels)
    return namer


@pytest.fixture(scope="session")
def small_oracle(small_corpus):
    return Oracle(small_corpus)
