"""Robustness and invariant tests: empty inputs, determinism, summary
consistency."""

from repro.core.namer import Namer, NamerConfig
from repro.core.patterns import PatternKind
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.corpus.model import Corpus, Repository, SourceFile
from repro.mining.miner import MiningConfig, PatternMiner

SMALL = MiningConfig(min_pattern_support=5, min_path_frequency=3)


class TestEmptyInputs:
    def test_empty_corpus(self):
        namer = Namer(NamerConfig(mining=SMALL))
        summary = namer.mine(Corpus())
        assert summary.num_patterns == 0
        assert namer.all_violations() == []

    def test_corpus_of_unparsable_files(self):
        corpus = Corpus(
            repositories=[
                Repository(
                    name="r",
                    files=[SourceFile(path="x.py", source="def broken(:")],
                )
            ]
        )
        namer = Namer(NamerConfig(mining=SMALL))
        summary = namer.mine(corpus)
        assert summary.total_files == 0

    def test_miner_empty_statement_list(self):
        miner = PatternMiner(SMALL, confusing_pairs=[("a", "b")])
        result = miner.mine([], PatternKind.CONFUSING_WORD)
        assert result.patterns == [] and result.total_statements == 0

    def test_commits_only_corpus(self):
        base = generate_python_corpus(GeneratorConfig(num_repos=2, seed=9))
        corpus = Corpus(commits=base.commits)
        namer = Namer(NamerConfig(mining=SMALL))
        summary = namer.mine(corpus)
        assert summary.num_confusing_pairs > 0
        assert summary.num_patterns == 0


class TestDeterminism:
    def test_mining_is_deterministic(self):
        corpus = generate_python_corpus(GeneratorConfig(num_repos=5, seed=9))
        keys = []
        for _ in range(2):
            namer = Namer(NamerConfig(mining=SMALL))
            namer.mine(corpus)
            keys.append(sorted(str(p.key()) for p in namer.matcher.patterns))
        assert keys[0] == keys[1]

    def test_violations_deterministic(self):
        corpus = generate_python_corpus(GeneratorConfig(num_repos=5, seed=9))
        results = []
        for _ in range(2):
            namer = Namer(NamerConfig(mining=SMALL))
            namer.mine(corpus)
            results.append(
                [(v.statement.file_path, v.statement.line, v.observed, v.suggested)
                 for v in namer.all_violations()]
            )
        assert results[0] == results[1]


class TestSummaryInvariants:
    def test_summary_bounds(self, fitted_namer):
        s = fitted_namer.summary
        assert 0 <= s.statements_with_violation <= s.total_statements
        assert 0 <= s.files_with_violation <= s.total_files
        assert 0 <= s.repos_with_violation <= s.total_repos
        assert s.num_patterns == s.num_consistency + s.num_confusing

    def test_pattern_supports_meet_threshold(self, fitted_namer):
        threshold = fitted_namer.config.mining.min_pattern_support
        for pattern in fitted_namer.matcher.patterns:
            assert pattern.support >= threshold

    def test_all_violations_belong_to_corpus_files(self, fitted_namer):
        paths = {pf.path for pf in fitted_namer.prepared}
        for violation in fitted_namer.all_violations():
            assert violation.statement.file_path in paths

    def test_violation_observed_differs_from_suggested(self, fitted_namer):
        for violation in fitted_namer.all_violations():
            if violation.pattern.kind is PatternKind.CONFUSING_WORD:
                assert violation.observed != violation.suggested
