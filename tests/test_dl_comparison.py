"""Smoke test for the Table 10/11 DL-comparison harness."""

import pytest

from repro.baselines.training import TrainConfig
from repro.evaluation.dl_comparison import inspect_dl_reports, run_dl_comparison
from repro.baselines.training import DlReport
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.evaluation.oracle import Oracle


@pytest.fixture(scope="module")
def comparison():
    corpus = generate_python_corpus(GeneratorConfig(num_repos=6, seed=17))
    return corpus, run_dl_comparison(
        corpus,
        namer_report_count=40,
        train_config=TrainConfig(epochs=1),
        model_dim=16,
        max_train_samples=120,
        max_test_samples=60,
        seed=2,
    )


class TestRunDlComparison:
    def test_both_models_present(self, comparison):
        _, results = comparison
        assert set(results) == {"GGNN", "GREAT"}

    def test_rows_consistent(self, comparison):
        _, results = comparison
        for result in results.values():
            row = result.row
            assert (
                row.semantic_defects + row.code_quality_issues + row.false_positives
                == row.reports
            )

    def test_report_budget_respected(self, comparison):
        _, results = comparison
        for result in results.values():
            assert result.row.reports <= 40 // 5

    def test_synthetic_metrics_present(self, comparison):
        _, results = comparison
        for result in results.values():
            assert 0.0 <= result.synthetic.classification <= 1.0

    def test_models_returned(self, comparison):
        _, results = comparison
        for result in results.values():
            assert hasattr(result.model, "predict_probs")
            assert result.test_samples


class TestInspectDlReports:
    def test_counts_against_oracle(self, comparison):
        corpus, _ = comparison
        oracle = Oracle(corpus)
        truth = corpus.ground_truth[0]
        reports = [
            DlReport(
                file_path=truth.file_path,
                line=truth.line,
                observed=truth.observed,
                suggested=truth.suggested,
                confidence=1.0,
            ),
            DlReport(
                file_path="nowhere.py", line=1, observed="a", suggested="b",
                confidence=0.5,
            ),
        ]
        row = inspect_dl_reports("X", reports, oracle)
        assert row.reports == 2
        assert row.false_positives == 1
        assert row.semantic_defects + row.code_quality_issues == 1
