"""Integration test: the full Python pipeline on a hand-written repo.

Exercises the complete inference path of Figure 1 on sources written
inline (not generator output): parse -> analyze -> transform -> match ->
classify -> render fixes.
"""

import pytest

from repro.core.namer import Namer, NamerConfig
from repro.corpus.model import Corpus, Repository, SourceFile
from repro.mining.miner import MiningConfig
from repro.corpus.generator import GeneratorConfig, generate_python_corpus


IDIOM_FILE = """
from unittest import TestCase

class Test{name}(TestCase):
    def test_{attr}(self):
        {noun} = self.build_{noun}()
        self.assertEqual({noun}.{attr}, {value})
"""

BUGGY_FILE = """
from unittest import TestCase

class TestPicture(TestCase):
    def test_angle_picture(self):
        picture = self.build_picture()
        self.assertTrue(picture.rotate_angle, 90)
"""


@pytest.fixture(scope="module")
def hand_world():
    """The generator corpus plus a hand-written buggy file."""
    corpus = generate_python_corpus(GeneratorConfig(num_repos=10, seed=123))
    hand = Repository(name="hand")
    nouns = ["user", "frame", "packet", "order", "signal"]
    attrs = ["size", "count", "level", "limit"]
    for i in range(12):
        source = IDIOM_FILE.format(
            name=f"T{i}", noun=nouns[i % 5], attr=attrs[i % 4], value=i + 1
        )
        hand.files.append(SourceFile(path=f"hand/t{i}.py", source=source))
    hand.files.append(SourceFile(path="hand/buggy.py", source=BUGGY_FILE))
    corpus.repositories.append(hand)
    return corpus


def test_full_inference_pipeline(hand_world):
    namer = Namer(
        NamerConfig(mining=MiningConfig(min_pattern_support=10, min_path_frequency=5))
    )
    summary = namer.mine(hand_world)
    assert summary.num_patterns > 0

    buggy = next(pf for pf in namer.prepared if pf.path == "hand/buggy.py")
    violations = namer.violations_in(buggy)
    assert violations, "the Figure 2 bug must trigger a violation"
    hits = [v for v in violations if v.observed == "True" and v.suggested == "Equal"]
    assert hits, f"expected True->Equal, got {[ (v.observed, v.suggested) for v in violations]}"

    # Without a trained classifier every violation is reported.
    reports = namer.classify(hits)
    assert reports and reports[0].fixed_identifier() == "assertEqual"


def test_origin_gate(hand_world):
    """The same statement outside a TestCase context must not match."""
    namer = Namer(
        NamerConfig(mining=MiningConfig(min_pattern_support=10, min_path_frequency=5))
    )
    namer.mine(hand_world)

    from repro.core.prepare import prepare_file
    from repro.corpus.model import SourceFile

    plain = SourceFile(
        path="x.py",
        source=(
            "class Checker:\n"
            "    def assertTrue(self, value, expected):\n"
            "        self.count = value\n"
            "    def check(self, rec):\n"
            "        self.assertTrue(rec.angle, 90)\n"
        ),
    )
    prepared = prepare_file(plain, repo="x")
    violations = namer.violations_in(prepared)
    assert not [v for v in violations if v.observed == "True"]
