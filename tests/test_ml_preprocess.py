"""Tests for StandardScaler and PCA."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.preprocess import PCA, StandardScaler

matrices = arrays(
    np.float64,
    st.tuples(st.integers(5, 20), st.integers(2, 6)),
    elements=st.floats(-100, 100),
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5, 3, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1, atol=1e-9)

    def test_constant_feature(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0)

    def test_inverse_transform(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    @given(matrices)
    def test_transform_shape_preserved(self, X):
        Z = StandardScaler().fit_transform(X)
        assert Z.shape == X.shape
        assert np.isfinite(Z).all()


class TestPCA:
    def test_reconstruction_with_all_components(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(40, 5))
        pca = PCA().fit(X)
        Z = pca.transform(X)
        assert np.allclose(pca.inverse_transform(Z), X, atol=1e-8)

    def test_component_count(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 6))
        pca = PCA(n_components=3).fit(X)
        assert pca.components_.shape == (3, 6)
        assert pca.transform(X).shape == (40, 3)

    def test_fractional_components(self):
        rng = np.random.default_rng(4)
        base = rng.normal(size=(100, 2))
        # Two dominant directions embedded in 5 dims plus tiny noise.
        X = np.hstack([base, base @ rng.normal(size=(2, 3))])
        X += rng.normal(scale=1e-6, size=X.shape)
        pca = PCA(n_components=0.99).fit(X)
        assert pca.components_.shape[0] <= 3

    def test_variance_ordering(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(50, 4)) * np.array([10, 5, 1, 0.1])
        pca = PCA().fit(X)
        variances = pca.explained_variance_
        assert all(variances[i] >= variances[i + 1] for i in range(len(variances) - 1))

    def test_ratio_sums_to_one(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(30, 3))
        pca = PCA().fit(X)
        assert np.isclose(pca.explained_variance_ratio_.sum(), 1.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            PCA(n_components=1.5).fit(np.ones((4, 2)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA().transform(np.ones((2, 2)))

    def test_components_orthonormal(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(50, 4))
        pca = PCA().fit(X)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(len(gram)), atol=1e-8)
