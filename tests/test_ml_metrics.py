"""Tests for metrics and model selection utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml.linear import LogisticRegression
from repro.ml.metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    precision,
    recall,
)
from repro.ml.model_selection import (
    cross_validate,
    kfold_indices,
    repeated_holdout,
    train_test_split,
)

labels = st.lists(st.integers(0, 1), min_size=1, max_size=50)


class TestMetrics:
    def test_confusion_matrix(self):
        m = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 0])
        assert m.tolist() == [[1, 1], [1, 1]]

    def test_perfect(self):
        y = [0, 1, 1, 0]
        report = classification_report(y, y)
        assert report.accuracy == report.precision == report.recall == report.f1 == 1.0

    def test_all_wrong(self):
        assert accuracy([0, 1], [1, 0]) == 0.0

    def test_precision_recall_asymmetry(self):
        y_true = [1, 1, 1, 0]
        y_pred = [1, 0, 0, 0]
        assert precision(y_true, y_pred) == 1.0
        assert recall(y_true, y_pred) == pytest.approx(1 / 3)

    def test_zero_division_guards(self):
        assert precision([0, 0], [0, 0]) == 0.0
        assert recall([0, 0], [0, 0]) == 0.0
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([0, 1], [0])

    @given(labels)
    def test_accuracy_bounds(self, y):
        pred = [1 - v for v in y]
        assert 0.0 <= accuracy(y, pred) <= 1.0

    @given(labels)
    def test_f1_between_precision_recall_bounds(self, y):
        rng = np.random.default_rng(0)
        pred = rng.integers(0, 2, size=len(y))
        f1 = f1_score(y, pred)
        assert 0.0 <= f1 <= 1.0


class TestSplits:
    def test_train_test_split_sizes(self):
        X = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, 0.3, np.random.default_rng(0))
        assert len(X_te) == 3 and len(X_tr) == 7
        assert len(y_te) == 3

    def test_split_partitions(self):
        X = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        X_tr, X_te, _, _ = train_test_split(X, y, 0.2, np.random.default_rng(1))
        combined = sorted(X_tr.ravel().tolist() + X_te.ravel().tolist())
        assert combined == list(range(10))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 1)), np.ones(4), 1.5)

    def test_kfold_covers_everything(self):
        folds = list(kfold_indices(10, 3, np.random.default_rng(2)))
        all_test = sorted(np.concatenate([te for _, te in folds]).tolist())
        assert all_test == list(range(10))

    def test_kfold_disjoint(self):
        for train, test in kfold_indices(12, 4, np.random.default_rng(3)):
            assert not set(train) & set(test)

    def test_kfold_invalid_k(self):
        with pytest.raises(ValueError):
            list(kfold_indices(3, 10))


class TestCrossValidation:
    def make_data(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(80, 3))
        y = (X[:, 0] > 0).astype(int)
        return X, y

    def test_cross_validate(self):
        X, y = self.make_data()
        result = cross_validate(LogisticRegression, X, y, k=4, rng=np.random.default_rng(5))
        assert len(result.folds) == 4
        assert result.mean_accuracy > 0.8

    def test_repeated_holdout_count(self):
        X, y = self.make_data()
        result = repeated_holdout(
            LogisticRegression, X, y, repeats=5, rng=np.random.default_rng(6)
        )
        assert len(result.folds) == 5
        assert 0.0 <= result.summary().f1 <= 1.0
