"""Unit tests for the neutral AST (repro.lang.astir)."""

from repro.lang.astir import Node, StatementAst, node, terminal


def make_tree():
    return node(
        "Call",
        node("NameLoad", terminal("Ident", "self")),
        node("Num", terminal("NumLit", "90")),
    )


class TestNode:
    def test_default_value_is_kind(self):
        assert Node(kind="Call").value == "Call"

    def test_explicit_value(self):
        assert Node(kind="BinOp", value="BinOpAdd").value == "BinOpAdd"

    def test_terminal_detection(self):
        tree = make_tree()
        assert not tree.is_terminal
        assert terminal("Ident", "x").is_terminal

    def test_add_returns_self(self):
        n = Node(kind="Call")
        assert n.add(terminal("Ident", "x")) is n
        assert len(n.children) == 1

    def test_walk_preorder(self):
        tree = make_tree()
        kinds = [n.kind for n in tree.walk()]
        assert kinds == ["Call", "NameLoad", "Ident", "Num", "NumLit"]

    def test_terminals_left_to_right(self):
        values = [t.value for t in make_tree().terminals()]
        assert values == ["self", "90"]

    def test_find(self):
        hits = list(make_tree().find(lambda n: n.kind == "Ident"))
        assert len(hits) == 1 and hits[0].value == "self"

    def test_clone_is_deep(self):
        tree = make_tree()
        copy = tree.clone()
        copy.children[0].children[0].value = "other"
        assert tree.children[0].children[0].value == "self"

    def test_clone_copies_meta(self):
        tree = make_tree()
        tree.meta["x"] = 1
        copy = tree.clone()
        copy.meta["x"] = 2
        assert tree.meta["x"] == 1

    def test_size(self):
        assert make_tree().size() == 5

    def test_depth(self):
        assert make_tree().depth() == 3
        assert terminal("Ident", "x").depth() == 1

    def test_structural_key_equal_for_equal_trees(self):
        assert make_tree().structural_key() == make_tree().structural_key()

    def test_structural_key_differs_on_values(self):
        other = make_tree()
        other.children[0].children[0].value = "that"
        assert other.structural_key() != make_tree().structural_key()

    def test_pretty_contains_all_values(self):
        text = make_tree().pretty()
        for piece in ("Call", "self", "90"):
            assert piece in text


class TestStatementAst:
    def test_structural_key_delegates(self):
        stmt = StatementAst(root=make_tree())
        assert stmt.structural_key() == make_tree().structural_key()

    def test_repr_includes_location(self):
        stmt = StatementAst(root=make_tree(), file_path="a.py", line=3)
        assert "a.py:3" in repr(stmt)
