"""Tests for VarMisuse sample construction."""

import random

from repro.baselines.graphs import build_graphs
from repro.baselines.varmisuse import (
    build_dataset,
    candidate_set,
    corpus_graphs,
    corrupt,
    extract_slots,
    make_sample,
)
from repro.corpus.generator import GeneratorConfig, generate_python_corpus
from repro.lang.python_frontend import parse_module

SOURCE = """
def process(items, total, count):
    result = total
    result = count
    value = items
    return result
"""


def graph():
    return build_graphs(parse_module(SOURCE, "p.py", "r"))[0]


class TestSlots:
    def test_slots_are_reuses(self):
        g = graph()
        slots = extract_slots(g)
        assert slots
        for node_id, name in slots:
            assert g.labels[node_id] == name
            # never the first occurrence
            assert g.var_nodes[name][0] != node_id

    def test_max_slots(self):
        assert len(extract_slots(graph(), max_slots=2)) == 2


class TestCandidates:
    def test_slot_name_first(self):
        g = graph()
        nodes, names = candidate_set(g, "total", random.Random(0))
        assert names[0] == "total"
        assert len(nodes) == len(names)

    def test_candidates_distinct(self):
        g = graph()
        _, names = candidate_set(g, "total", random.Random(1))
        assert len(set(names)) == len(names)


class TestCorrupt:
    def test_only_slot_changes(self):
        g = graph()
        (slot, name) = extract_slots(g)[0]
        bad = corrupt(g, slot, name, "zzz")
        assert bad.labels[slot] == "zzz"
        diffs = [i for i, (a, b) in enumerate(zip(g.labels, bad.labels)) if a != b]
        assert diffs == [slot]

    def test_original_untouched(self):
        g = graph()
        (slot, name) = extract_slots(g)[0]
        corrupt(g, slot, name, "zzz")
        assert g.labels[slot] == name


class TestMakeSample:
    def test_buggy_sample(self):
        g = graph()
        slot, name = extract_slots(g)[0]
        sample = make_sample(g, slot, name, random.Random(3), bug_probability=1.0)
        assert sample.is_buggy
        assert sample.original == name
        assert sample.observed != name
        assert sample.candidate_names[sample.label] == name
        assert sample.graph.labels[sample.slot] == sample.observed

    def test_clean_sample(self):
        g = graph()
        slot, name = extract_slots(g)[0]
        sample = make_sample(g, slot, name, random.Random(3), bug_probability=0.0)
        assert not sample.is_buggy
        assert sample.observed == name
        assert sample.observed_index == sample.label

    def test_probe_on_corrupted_graph(self):
        g = graph()
        slot, name = extract_slots(g)[0]
        bad = corrupt(g, slot, name, sorted(g.var_nodes)[0] if sorted(g.var_nodes)[0] != name else sorted(g.var_nodes)[1])
        probe = make_sample(bad, slot, name, random.Random(3), bug_probability=0.0)
        assert probe.is_buggy
        assert probe.observed == bad.labels[slot]
        assert probe.observed in probe.candidate_names


class TestDataset:
    def test_build_dataset(self):
        corpus = generate_python_corpus(GeneratorConfig(num_repos=3, seed=5))
        graphs = corpus_graphs(corpus)
        samples = build_dataset(graphs, seed=0, bug_probability=0.5)
        assert samples
        buggy = sum(s.is_buggy for s in samples)
        assert 0 < buggy < len(samples)

    def test_determinism(self):
        corpus = generate_python_corpus(GeneratorConfig(num_repos=2, seed=5))
        graphs = corpus_graphs(corpus)
        a = build_dataset(graphs, seed=7)
        b = build_dataset(graphs, seed=7)
        assert [(s.slot, s.observed) for s in a] == [(s.slot, s.observed) for s in b]

    def test_max_files(self):
        corpus = generate_python_corpus(GeneratorConfig(num_repos=3, seed=5))
        few = corpus_graphs(corpus, max_files=2)
        all_ = corpus_graphs(corpus)
        assert len(few) < len(all_)
