"""Tests for the naming-convention style checker (extension)."""

from repro.lang.python_frontend import parse_module
from repro.naming.style_checker import StyleChecker

SNAKE_FILE = """
def load_user_record(user_id, record_key):
    raw_data = fetch_remote_data(user_id)
    parsed_row = parse_data_row(raw_data)
    final_result = merge_row_values(parsed_row, record_key)
    cache_entry = store_cache_entry(final_result)
    return cache_entry
"""

MIXED_FILE = SNAKE_FILE + """
def helperMethod(inputValue):
    return inputValue
"""


class TestStyleChecker:
    def test_consistent_file_clean(self):
        issues = StyleChecker(min_names=5).check(parse_module(SNAKE_FILE, "a.py"))
        assert issues == []

    def test_minority_convention_flagged(self):
        issues = StyleChecker(min_names=5).check(parse_module(MIXED_FILE, "a.py"))
        names = {i.name for i in issues}
        assert "helperMethod" in names and "inputValue" in names
        for issue in issues:
            assert issue.style == "camel" and issue.dominant == "snake"

    def test_no_convention_no_issues(self):
        half = """
def snake_name_one(x_value): pass
def snake_name_two(y_value): pass
def camelNameOne(xValue): pass
def camelNameTwo(yValue): pass
def camelNameSix(zValue): pass
"""
        issues = StyleChecker(min_names=4, dominance=0.8).check(
            parse_module(half, "b.py")
        )
        assert issues == []

    def test_small_files_skipped(self):
        issues = StyleChecker(min_names=50).check(parse_module(MIXED_FILE, "a.py"))
        assert issues == []

    def test_single_token_names_ignored(self):
        source = "def run(x):\n    y = x\n    return y\n" + SNAKE_FILE
        issues = StyleChecker(min_names=5).check(parse_module(source, "c.py"))
        assert all(i.name not in ("x", "y") for i in issues)

    def test_types_judged_separately(self):
        """PascalCase classes in a snake_case file are fine: type names
        live in their own style domain."""
        source = SNAKE_FILE + "\nclass RemoteDataFetcher:\n    pass\n"
        issues = StyleChecker(min_names=5).check(parse_module(source, "d.py"))
        assert all(i.name != "RemoteDataFetcher" for i in issues)

    def test_describe(self):
        issues = StyleChecker(min_names=5).check(parse_module(MIXED_FILE, "e.py"))
        text = issues[0].describe()
        assert "e.py" in text and "snake" in text

    def test_deduplicates_repeated_names(self):
        source = MIXED_FILE + "\nz = helperMethod(1)\nw = helperMethod(2)\n"
        issues = StyleChecker(min_names=5).check(parse_module(source, "f.py"))
        assert sum(1 for i in issues if i.name == "helperMethod") == 1
