"""Tests for origin computation (Section 4.1's deliverable)."""

from repro.analysis.origins import compute_origins
from repro.lang.java.frontend import parse_java
from repro.lang.python_frontend import parse_module


def python_origins(source):
    return compute_origins(parse_module(source))


class TestPythonOrigins:
    def test_self_origin_is_parent_class(self):
        src = (
            "class TestPicture(TestCase):\n"
            "    def test_a(self):\n"
            "        self.assertTrue(x, 90)\n"
        )
        result = python_origins(src)
        assert result.by_function["TestPicture.test_a"]["self"] == "TestCase"

    def test_primitive_origins(self):
        src = "def f():\n    name = 'x'\n    count = 3\n    flag = True\n"
        env = python_origins(src).by_function["f"]
        assert env == {"name": "Str", "count": "Num", "flag": "Bool"}

    def test_primitive_flows_through_move(self):
        src = "def f():\n    a = 1\n    b = a\n"
        assert python_origins(src).by_function["f"]["b"] == "Num"

    def test_import_alias_module_level(self):
        result = python_origins("import numpy as np\nx = 1\n")
        assert result.per_statement[1]["np"] == "numpy"

    def test_opaque_assignment_tops_out(self):
        src = "def f():\n    x = 1\n    x += 2\n"
        env = python_origins(src).by_function.get("f", {})
        assert "x" not in env

    def test_conflicting_origins_top_out(self):
        src = (
            "class A:\n    pass\nclass B:\n    pass\n"
            "def f(flag):\n"
            "    x = A()\n"
            "    x = B()\n"
        )
        env = python_origins(src).by_function.get("f", {})
        assert "x" not in env

    def test_constructor_literal_flow(self):
        src = (
            "class Conf:\n"
            "    def __init__(self, name, port):\n"
            "        self.name = name\n"
            "        self.port = port\n"
            "def make():\n    return Conf('api', 8080)\n"
        )
        env = python_origins(src).by_function["Conf.__init__"]
        assert env["name"] == "Str" and env["port"] == "Num"

    def test_per_statement_env_scoping(self):
        src = "x = 1\ndef f():\n    y = 'a'\n    z = y\n"
        result = python_origins(src)
        module_env = result.per_statement[0]
        inner_env = result.per_statement[2]
        assert module_env.get("x") == "Num"
        assert inner_env.get("y") == "Str"
        assert "y" not in module_env


class TestJavaOrigins:
    def test_this_and_decl_types(self):
        src = (
            "public class A extends Activity {\n"
            "    public void m(Context context) {\n"
            "        Intent intent = new Intent();\n"
            "        double ratio = 1.5;\n"
            "        ratio += 1;\n"
            "    }\n"
            "}\n"
        )
        env = compute_origins(parse_java(src)).by_function["A.m"]
        assert env["this"] == "Activity"
        assert env["intent"] == "Intent"
        assert env["context"] == "Context"
        # declared type survives the opaque +=
        assert env["ratio"] == "Num"

    def test_catch_variable(self):
        src = (
            "class A { void m() { try { f(); } catch (Exception e) {"
            " e.printStackTrace(); } } }"
        )
        env = compute_origins(parse_java(src)).by_function["A.m"]
        assert env["e"] == "Exception"

    def test_string_param(self):
        src = "class A { A(String publickKey) { this.publicKey = publickKey; } }"
        env = compute_origins(parse_java(src)).by_function["A.__init__"]
        assert env["publickKey"] == "Str"
