"""Tests for the linear classifiers (SVM, logistic regression, LDA)."""

import numpy as np
import pytest

from repro.ml.lda import LinearDiscriminantAnalysis
from repro.ml.linear import LinearSVM, LogisticRegression
from repro.ml.pipeline import ClassifierPipeline


def separable_data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=[-2, -2], scale=0.6, size=(n // 2, 2))
    X1 = rng.normal(loc=[2, 2], scale=0.6, size=(n // 2, 2))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    order = rng.permutation(n)
    return X[order], y[order]


def noisy_data(n=200, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    w = np.array([1.5, -2.0, 0.5, 0.0])
    y = ((X @ w + 0.3 * rng.normal(size=n)) > 0).astype(int)
    return X, y


MODELS = [LinearSVM, LogisticRegression, LinearDiscriminantAnalysis]


@pytest.mark.parametrize("model_cls", MODELS)
class TestAllModels:
    def test_separable_perfect(self, model_cls):
        X, y = separable_data()
        model = model_cls().fit(X, y)
        assert (model.predict(X) == y).mean() == 1.0

    def test_noisy_above_chance(self, model_cls):
        X, y = noisy_data()
        model = model_cls().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.85

    def test_decision_function_sign_matches_predict(self, model_cls):
        X, y = separable_data()
        model = model_cls().fit(X, y)
        scores = model.decision_function(X)
        assert np.array_equal(model.predict(X), (scores >= 0).astype(int))

    def test_unfitted_raises(self, model_cls):
        with pytest.raises(RuntimeError):
            model_cls().predict(np.ones((2, 2)))


class TestLogisticRegression:
    def test_predict_proba_valid(self):
        X, y = separable_data()
        model = LogisticRegression().fit(X, y)
        probs = model.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_confident_on_separable(self):
        X, y = separable_data()
        model = LogisticRegression(C=10.0).fit(X, y)
        probs = model.predict_proba(X)
        assert probs.max(axis=1).mean() > 0.9


class TestLDA:
    def test_requires_two_classes(self):
        with pytest.raises(ValueError):
            LinearDiscriminantAnalysis().fit(np.ones((4, 2)), np.zeros(4))

    def test_weights_direction(self):
        X, y = separable_data()
        model = LinearDiscriminantAnalysis().fit(X, y)
        # class 1 lies toward (+,+): both weights positive
        assert (model.coef_ > 0).all()


class TestPipeline:
    def test_fit_predict(self):
        X, y = noisy_data()
        pipe = ClassifierPipeline(LinearSVM(), n_components=0.99).fit(X, y)
        assert (pipe.predict(X) == y).mean() > 0.85

    def test_feature_weights_shape(self):
        X, y = noisy_data()
        pipe = ClassifierPipeline(LinearSVM(), n_components=3).fit(X, y)
        assert pipe.feature_weights().shape == (4,)

    def test_feature_weights_without_pca(self):
        X, y = noisy_data()
        pipe = ClassifierPipeline(LinearSVM()).fit(X, y)
        assert pipe.feature_weights().shape == (4,)

    def test_weights_identify_informative_features(self):
        X, y = noisy_data()
        pipe = ClassifierPipeline(LogisticRegression()).fit(X, y)
        w = np.abs(pipe.feature_weights())
        # feature 3 is pure noise: weakest weight
        assert w[3] == w.min()

    def test_decision_function(self):
        X, y = separable_data()
        pipe = ClassifierPipeline(LinearSVM(), n_components=2).fit(X, y)
        scores = pipe.decision_function(X)
        assert np.array_equal(pipe.predict(X), (scores >= 0).astype(int))
