"""Tests for AST diffing and confusing word pair mining."""

from repro.lang.python_frontend import parse_module
from repro.mining.astdiff import (
    NameEdit,
    diff_statements,
    identifier_edits,
    subtoken_edit,
)
from repro.mining.confusing_pairs import ConfusingPairStore, mine_confusing_pairs


def stmts(source):
    return parse_module(source).statements


class TestDiffStatements:
    def test_pairs_edited_statements(self):
        before = stmts("x = 1\nself.assertTrue(a, 2)\ny = 3")
        after = stmts("x = 1\nself.assertEqual(a, 2)\ny = 3")
        pairs = diff_statements(before, after)
        assert len(pairs) == 1
        assert "assertTrue" in pairs[0][0].structural_key()

    def test_identical_files_no_pairs(self):
        a = stmts("x = 1\ny = 2")
        b = stmts("x = 1\ny = 2")
        assert diff_statements(a, b) == []

    def test_insertion_not_paired(self):
        a = stmts("x = 1")
        b = stmts("x = 1\ny = 2")
        assert diff_statements(a, b) == []


class TestIdentifierEdits:
    def test_single_rename(self):
        a = stmts("self.port = por")[0].root
        b = stmts("self.port = port")[0].root
        edits = identifier_edits(a, b)
        assert edits == [NameEdit(before="por", after="port")]

    def test_structural_change_returns_none(self):
        a = stmts("x = y")[0].root
        b = stmts("x = y + 1")[0].root
        assert identifier_edits(a, b) is None

    def test_no_edits(self):
        a = stmts("x = y")[0].root
        b = stmts("x = y")[0].root
        assert identifier_edits(a, b) == []

    def test_multiple_renames_collected(self):
        a = stmts("a = b")[0].root
        b = stmts("c = d")[0].root
        assert len(identifier_edits(a, b)) == 2


class TestSubtokenEdit:
    def test_single_subtoken_diff(self):
        assert subtoken_edit("assertTrue", "assertEqual") == ("True", "Equal")

    def test_identical(self):
        assert subtoken_edit("assertTrue", "assertTrue") is None

    def test_different_lengths(self):
        assert subtoken_edit("assertTrue", "assertTrueNow") is None

    def test_two_diffs(self):
        assert subtoken_edit("getUserName", "setHostName") is None

    def test_single_token_typo(self):
        assert subtoken_edit("por", "port") == ("por", "port")


class TestMineConfusingPairs:
    def parse(self, source):
        return parse_module(source).statements

    def test_mines_true_equal(self):
        commits = [
            ("self.assertTrue(a, 2)\n", "self.assertEqual(a, 2)\n"),
        ] * 3
        store = mine_confusing_pairs(commits, self.parse)
        assert store.counts[("True", "Equal")] == 3

    def test_skips_unparsable(self):
        commits = [("def broken(:", "def fixed(): pass")]
        store = mine_confusing_pairs(commits, self.parse)
        assert len(store) == 0

    def test_correct_words(self):
        store = ConfusingPairStore()
        store.add("True", "Equal", 3)
        store.add("or", "of", 1)
        assert store.correct_words(min_count=2) == {"Equal"}

    def test_pairs_ordering(self):
        store = ConfusingPairStore()
        store.add("a", "b", 1)
        store.add("c", "d", 5)
        assert store.pairs()[0] == ("c", "d")

    def test_is_confusing(self):
        store = ConfusingPairStore()
        store.add("True", "Equal")
        assert store.is_confusing("True", "Equal")
        assert not store.is_confusing("Equal", "True")
